package resilience

import (
	"errors"
	"io"
	"net"
	"time"
)

// deadliner is the subset of net.Conn both ends of the backhaul need for
// arming I/O deadlines. *net.TCPConn and net.Pipe conns satisfy it.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// wallNow is the one place this package reads the wall clock. Socket
// deadlines are inherently real-time: they bound how long a blocked Read
// or Write may wait on the kernel, which no simulated clock can stand in
// for. Everything else in the resilience layer stays deterministic.
//
//lint:ignore nondeterminism socket deadlines must be armed against the real clock
func wallNow() time.Time { return time.Now() }

// deadlineRW arms a fresh deadline before every Read/Write on the wrapped
// stream. A zero timeout disables that direction.
type deadlineRW struct {
	rw    io.ReadWriter
	d     deadliner
	read  time.Duration
	write time.Duration
}

// WithDeadlines wraps rw so every Read is preceded by SetReadDeadline(now+read)
// and every Write by SetWriteDeadline(now+write). If rw does not support
// deadlines (e.g. an in-memory buffer in tests) or both timeouts are zero,
// rw is returned unchanged. This is how both backhaul ends guarantee a
// dead peer surfaces as a timeout error instead of a forever-blocked
// goroutine: the gateway wraps its dialed conn, the cloud wraps each
// accepted session conn.
func WithDeadlines(rw io.ReadWriter, read, write time.Duration) io.ReadWriter {
	d, ok := rw.(deadliner)
	if !ok || (read <= 0 && write <= 0) {
		return rw
	}
	return &deadlineRW{rw: rw, d: d, read: read, write: write}
}

func (c *deadlineRW) Read(p []byte) (int, error) {
	if c.read > 0 {
		if err := c.d.SetReadDeadline(wallNow().Add(c.read)); err != nil {
			return 0, err
		}
	}
	return c.rw.Read(p)
}

func (c *deadlineRW) Write(p []byte) (int, error) {
	if c.write > 0 {
		if err := c.d.SetWriteDeadline(wallNow().Add(c.write)); err != nil {
			return 0, err
		}
	}
	return c.rw.Write(p)
}

// IsTimeout reports whether err is an I/O timeout (a tripped deadline).
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
