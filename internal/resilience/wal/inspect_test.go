package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/obs"
)

// TestInspectReportsLiveAndTraced checks that Inspect sees exactly what
// recovery would replay — data records minus acks — and surfaces the
// journaled trace context, without mutating the directory.
func TestInspectReportsLiveAndTraced(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openTest(t, Options{Dir: dir})
	seg1 := testSeg(100, 16)
	seg1.Trace = 0xDEADBEEF00C0FFEE
	id1, err := l.Append(seg1)
	if err != nil {
		t.Fatalf("append traced: %v", err)
	}
	seg2 := testSeg(200, 16)
	id2, err := l.Append(seg2)
	if err != nil {
		t.Fatalf("append untraced: %v", err)
	}
	seg3 := testSeg(300, 16)
	seg3.Trace = 0x1234
	if _, err := l.Append(seg3); err != nil {
		t.Fatalf("append traced 2: %v", err)
	}
	l.Ack(id2)
	l.Abandon() // leave the files exactly as a crash would

	rep, err := Inspect(dir, nil)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if rep.DataRecords != 3 || rep.AckRecords != 1 {
		t.Fatalf("records: data=%d acks=%d, want 3/1", rep.DataRecords, rep.AckRecords)
	}
	if len(rep.Live) != 2 {
		t.Fatalf("live: %d, want 2 (%+v)", len(rep.Live), rep.Live)
	}
	if rep.Live[0].ID != id1 || rep.Live[0].TraceID != 0xDEADBEEF00C0FFEE {
		t.Fatalf("live[0] = %+v, want id=%d trace=0xDEADBEEF00C0FFEE", rep.Live[0], id1)
	}
	if rep.Traced != 2 {
		t.Fatalf("traced = %d, want 2", rep.Traced)
	}
	if rep.TornBytes != 0 {
		t.Fatalf("torn bytes on a clean log: %d", rep.TornBytes)
	}

	// Inspect must agree with recovery, and must not have changed what
	// recovery finds.
	_, entries, _ := openTest(t, Options{Dir: dir, Metrics: NewMetrics(obs.NewRegistry())})
	if len(entries) != len(rep.Live) {
		t.Fatalf("recovery replays %d, inspect reported %d live", len(entries), len(rep.Live))
	}
	for i, e := range entries {
		if e.ID != rep.Live[i].ID || e.Seg.Trace != rep.Live[i].TraceID {
			t.Fatalf("entry %d: id=%d trace=%#x, inspect said id=%d trace=%#x",
				i, e.ID, e.Seg.Trace, rep.Live[i].ID, rep.Live[i].TraceID)
		}
	}
}

// TestInspectTornTail checks that a torn tail is reported byte-exactly and
// the file on disk keeps its garbage (Inspect never truncates).
func TestInspectTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openTest(t, Options{Dir: dir})
	mustAppend(t, l, 2)
	l.Abandon()

	path := filepath.Join(dir, fileName(1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	garbage := []byte{recData, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}
	if _, err := f.Write(garbage); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	rep, err := Inspect(dir, nil)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if rep.TornBytes != int64(len(garbage)) {
		t.Fatalf("torn bytes = %d, want %d", rep.TornBytes, len(garbage))
	}
	if rep.DataRecords != 2 || len(rep.Live) != 2 {
		t.Fatalf("clean records: data=%d live=%d, want 2/2", rep.DataRecords, len(rep.Live))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("inspect mutated the file: %d -> %d bytes", len(before), len(after))
	}
}

// TestInspectSurvivesCodecVariants checks data records written with a
// checksummed codec still inspect cleanly (the segment codec trailer rides
// inside the WAL frame).
func TestInspectSurvivesCodecVariants(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openTest(t, Options{Dir: dir, Codec: backhaul.SegmentCodec{Checksum: true}})
	seg := testSeg(500, 32)
	seg.Trace = 7
	if _, err := l.Append(seg); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Abandon()
	rep, err := Inspect(dir, nil)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if len(rep.Live) != 1 || rep.Live[0].TraceID != 7 || rep.Live[0].SegSamples != 32 {
		t.Fatalf("live = %+v, want one 32-sample record with trace 7", rep.Live)
	}
}
