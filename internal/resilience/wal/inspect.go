package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/backhaul"
	"repro/internal/faults"
)

// RecordInfo is one parsed WAL record, as Inspect reports it.
type RecordInfo struct {
	// Kind is "data" or "ack".
	Kind string `json:"kind"`
	// ID is the data record's log id, or the id an ack record retires.
	ID uint64 `json:"id"`
	// SegStart and SegSamples describe a data record's segment.
	SegStart   int64 `json:"seg_start,omitempty"`
	SegSamples int   `json:"seg_samples,omitempty"`
	// TraceID is the trace context journaled with the segment (0 when the
	// segment was admitted untraced or by a pre-v3 build).
	TraceID uint64 `json:"trace_id,omitempty"`
}

// FileReport is one WAL file's inspection result.
type FileReport struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	// Data and Acks count the checksum-clean records by kind.
	Data int `json:"data_records"`
	Acks int `json:"ack_records"`
	// TornBytes is the unparseable tail: bytes after the first bad frame.
	// Recovery would truncate exactly these.
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// Records lists every clean record in file order.
	Records []RecordInfo `json:"records,omitempty"`
}

// Report is a whole-directory WAL inspection.
type Report struct {
	Dir   string       `json:"dir"`
	Files []FileReport `json:"files"`
	// DataRecords and AckRecords total the clean records across files.
	DataRecords int `json:"data_records"`
	AckRecords  int `json:"ack_records"`
	// Live is what a restart would replay: data records never acked.
	Live []RecordInfo `json:"live,omitempty"`
	// Traced counts live records whose segment carries a trace ID — after
	// recovery each replays on its original trace with a wal_replay stage.
	Traced int `json:"traced"`
	// TornBytes totals the unparseable tails across files.
	TornBytes int64 `json:"torn_bytes,omitempty"`
}

// Inspect reads a WAL directory without opening it for writing: it parses
// every record the same way recovery does (same framing, same checksums,
// same first-bad-frame cut) but mutates nothing — no truncation, no
// compaction, no append target. fs nil means the real filesystem. The
// error covers only directory-level failures; corrupt contents are
// reported, not failed on.
func Inspect(dir string, fs faults.Filesystem) (*Report, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: inspect: empty dir")
	}
	if fs == nil {
		fs = faults.OS()
	}
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: inspect %s: %w", dir, err)
	}
	seqs := make([]uint64, 0, len(names))
	for _, name := range names {
		if seq, ok := parseFileName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	rep := &Report{Dir: dir}
	acked := make(map[uint64]struct{})
	var live []RecordInfo
	for _, seq := range seqs {
		name := fileName(seq)
		raw, err := fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: inspect %s: %w", name, err)
		}
		fr := FileReport{Name: name, Bytes: int64(len(raw))}
		off := 0
		for off < len(raw) {
			kind, payload, next, ok := parseRecord(raw, off)
			if ok && kind == recData {
				id, seg, err := backhaul.DecodeSegmentSeq(payload)
				if err != nil {
					ok = false
				} else {
					info := RecordInfo{
						Kind:       "data",
						ID:         id,
						SegStart:   seg.Start,
						SegSamples: len(seg.Samples),
						TraceID:    seg.Trace,
					}
					fr.Records = append(fr.Records, info)
					fr.Data++
					live = append(live, info)
				}
			}
			if ok && kind == recAck {
				if len(payload) != 8 {
					ok = false
				} else {
					id := binary.BigEndian.Uint64(payload)
					fr.Records = append(fr.Records, RecordInfo{Kind: "ack", ID: id})
					fr.Acks++
					acked[id] = struct{}{}
				}
			}
			if !ok {
				fr.TornBytes = int64(len(raw) - off)
				break
			}
			off = next
		}
		rep.DataRecords += fr.Data
		rep.AckRecords += fr.Acks
		rep.TornBytes += fr.TornBytes
		rep.Files = append(rep.Files, fr)
	}
	for _, info := range live {
		if _, ok := acked[info.ID]; ok {
			continue
		}
		rep.Live = append(rep.Live, info)
		if info.TraceID != 0 {
			rep.Traced++
		}
	}
	sort.Slice(rep.Live, func(i, j int) bool { return rep.Live[i].ID < rep.Live[j].ID })
	return rep, nil
}
