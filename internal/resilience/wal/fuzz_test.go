package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/backhaul"
)

// FuzzWALRecord drives the record framing both ways: a framed payload must
// round-trip exactly; any single-byte corruption or torn prefix must be
// rejected (never parsed, never panicking); and a recovery-style scan over a
// frame followed by arbitrary tail bytes must only ever yield records whose
// checksum independently verifies, stopping cleanly at the first bad frame.
func FuzzWALRecord(f *testing.F) {
	seg := testSeg(4096, 32)
	encoded, err := backhaul.DefaultCodec.Encode(seg)
	if err != nil {
		f.Fatal(err)
	}
	idPayload := make([]byte, 8+len(encoded))
	binary.BigEndian.PutUint64(idPayload, 3)
	copy(idPayload[8:], encoded)
	f.Add(idPayload, []byte{}, 0, byte(0x01))
	f.Add([]byte{}, []byte{recData, 0, 0, 0, 0}, 2, byte(0xFF))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, bytes.Repeat([]byte{0xAA}, 40), 7, byte(0x80))

	f.Fuzz(func(t *testing.T, payload, tail []byte, flipAt int, mask byte) {
		if len(payload) > 1<<16 || len(tail) > 1<<16 {
			return
		}
		rec := appendRecord(nil, recData, payload)

		// Round-trip: the framed record parses back to the identical payload.
		kind, got, next, ok := parseRecord(rec, 0)
		if !ok || kind != recData || next != len(rec) || !bytes.Equal(got, payload) {
			t.Fatalf("round-trip failed: ok=%v kind=%d next=%d/%d", ok, kind, next, len(rec))
		}

		// Torn tail: no strict prefix may parse as a whole record.
		for cut := 0; cut < len(rec); cut++ {
			if _, _, _, ok := parseRecord(rec[:cut], 0); ok {
				t.Fatalf("torn prefix of %d/%d bytes parsed as a record", cut, len(rec))
			}
		}

		// Corrupt prefix: flipping any byte breaks the frame.
		if mask != 0 {
			corrupt := append([]byte(nil), rec...)
			idx := flipAt
			if idx < 0 {
				idx = -idx
			}
			idx %= len(corrupt)
			corrupt[idx] ^= mask
			if _, got, _, ok := parseRecord(corrupt, 0); ok {
				// A flip inside the length field can frame a different span;
				// parsing may only succeed if that span's checksum holds, in
				// which case the yielded payload must still verify below.
				verifyChecksum(t, corrupt, 0, got)
			}
		}

		// Recovery scan over record + arbitrary tail: every yielded record
		// verifies independently, offsets strictly advance, and the scan
		// terminates.
		buf := append(append([]byte(nil), rec...), tail...)
		off := 0
		for off < len(buf) {
			kind, p, next, ok := parseRecord(buf, off)
			if !ok {
				break
			}
			if next <= off || next > len(buf) {
				t.Fatalf("scan did not advance: off=%d next=%d", off, next)
			}
			if kind != recData && kind != recAck {
				t.Fatalf("scan yielded unknown kind %d", kind)
			}
			verifyChecksum(t, buf, off, p)
			off = next
		}
	})
}

// verifyChecksum recomputes the frame CRC of the record at buf[off:] and
// fails the test if the parser accepted a record that does not hold.
func verifyChecksum(t *testing.T, buf []byte, off int, payload []byte) {
	t.Helper()
	body := buf[off : off+recHeader+len(payload)]
	want := binary.BigEndian.Uint32(buf[off+recHeader+len(payload):])
	if crc32.Checksum(body, castagnoli) != want {
		t.Fatalf("parser accepted a record whose checksum does not verify (off %d)", off)
	}
}
