// Package wal is the crash-safe write-ahead log behind the gateway's
// durable segment spool. Every admitted segment is journaled before it is
// spooled; acknowledgements are journaled as the shipped window advances;
// a restarted gateway replays whatever was journaled but never acked.
//
// On-disk format (DESIGN.md §15): a WAL directory holds rotated files
// wal-<seq>.log, each a sequence of framed records
//
//	[kind:1][len:4 BE][payload:len][crc32c:4 BE]
//
// with the CRC32-Castagnoli covering kind, length and payload. Record
// kinds: a data record's payload is [id:8 BE] followed by the backhaul
// segment codec encoding (byte-identical to a MsgSegmentSeq payload, so
// the segment codec's own integrity trailer travels into the log); an ack
// record's payload is the 8-byte id it retires. Ids are assigned
// monotonically per log lifetime and never reused, so replay order is
// admission order even across rotated files.
//
// Recovery tolerates torn tails and corrupt records by truncating the
// containing file at the first bad frame — never by failing open and never
// by replaying a record whose checksum does not hold. Acks that reference
// unknown ids (their data file was already compacted away) are ignored.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Record kinds.
const (
	recData = 1
	recAck  = 2
)

// recHeader is kind + big-endian length; recTrailer the CRC32C.
const (
	recHeader  = 5
	recTrailer = 4
)

// DefaultFileBytes caps one WAL file before rotation when
// Options.FileBytes is zero.
const DefaultFileBytes = 1 << 20

// DefaultSyncEvery is the batched-policy fsync cadence (appends per sync)
// when Options.SyncEvery is zero.
const DefaultSyncEvery = 8

// castagnoli is the CRC32C table shared by framing and recovery.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close or Abandon.
var ErrClosed = errors.New("wal: log closed")

// ErrWedged is returned by Append once a disk fault could not be repaired
// by truncating back to the last good record boundary; the log stops
// accepting records so it cannot grow an unparseable tail.
var ErrWedged = errors.New("wal: log wedged by unrepairable disk fault")

// SyncPolicy selects when Append fsyncs.
type SyncPolicy int

const (
	// SyncBatched (the default) fsyncs every SyncEvery appends, on
	// rotation and on Close — bounded loss window, amortized cost.
	SyncBatched SyncPolicy = iota
	// SyncEachRecord fsyncs after every append — no loss window, one disk
	// round-trip per segment.
	SyncEachRecord
	// SyncNone never fsyncs during appends (Close still does) — fastest,
	// widest loss window; a crash may tear everything since open.
	SyncNone
)

// Metrics is the wal_* counter set. All fields are nil-safe, so a zero
// Metrics disables accounting without branches.
type Metrics struct {
	Appended     *obs.Counter // wal_records_appended_total
	Acked        *obs.Counter // wal_records_acked_total
	Synced       *obs.Counter // wal_syncs_total
	Replayed     *obs.Counter // wal_records_replayed_total
	TruncatedRec *obs.Counter // wal_truncated_records_total
	TruncatedB   *obs.Counter // wal_truncated_bytes_total
	Compacted    *obs.Counter // wal_files_compacted_total
	AppendErrors *obs.Counter // wal_append_errors_total
	LiveBytes    *obs.Gauge   // wal_live_bytes
}

// NewMetrics wires the wal_* series onto a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Appended:     r.Counter("wal_records_appended_total"),
		Acked:        r.Counter("wal_records_acked_total"),
		Synced:       r.Counter("wal_syncs_total"),
		Replayed:     r.Counter("wal_records_replayed_total"),
		TruncatedRec: r.Counter("wal_truncated_records_total"),
		TruncatedB:   r.Counter("wal_truncated_bytes_total"),
		Compacted:    r.Counter("wal_files_compacted_total"),
		AppendErrors: r.Counter("wal_append_errors_total"),
		LiveBytes:    r.Gauge("wal_live_bytes"),
	}
}

// Options configures Open.
type Options struct {
	// Dir is the WAL directory, created if missing. Required.
	Dir string
	// FileBytes caps one file before rotation (default DefaultFileBytes).
	FileBytes int64
	// Sync is the fsync policy (default SyncBatched).
	Sync SyncPolicy
	// SyncEvery is the batched cadence (default DefaultSyncEvery).
	SyncEvery int
	// Codec encodes segments into data records. The zero value means
	// backhaul.DefaultCodec. Attach no CodecMetrics here unless WAL
	// encodes should count toward the backhaul encode totals.
	Codec backhaul.SegmentCodec
	// FS is the filesystem seam (default the real OS). Tests inject
	// faults.NewFS here.
	FS faults.Filesystem
	// Metrics receives the wal_* series (nil = unaccounted).
	Metrics *Metrics
	// Journal records wal_window_recover / wal_tail_truncate /
	// wal_file_compact transitions (nil-safe).
	Journal *obs.Journal
}

// Entry is one recovered, unacknowledged data record.
type Entry struct {
	// ID is the record's log-assigned id; pass it to Ack once the segment
	// has been shipped and acknowledged (or otherwise finally handled).
	ID uint64
	// Seg is the decoded segment, ready to re-ship.
	Seg backhaul.Segment
}

// walFile tracks one on-disk file's live (unacked) data records.
type walFile struct {
	seq     uint64
	path    string
	size    int64
	unacked map[uint64]struct{}
}

// Log is the write-ahead log. Append and Ack are safe for concurrent use
// (the gateway's feeder appends while the session goroutine acks).
type Log struct {
	opts Options

	mu       sync.Mutex
	files    []*walFile // oldest..newest; the last is the append target
	active   faults.File
	nextID   uint64
	nextSeq  uint64
	loc      map[uint64]*walFile // live data record id -> containing file
	since    int                 // appends since the last sync (batched)
	live     int64               // bytes across all files
	wedgeErr error
	closed   bool
}

// fileName formats the rotated-file name for a sequence number.
func fileName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseFileName extracts the sequence number from a wal file name.
func parseFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	digits := name[len("wal-") : len(name)-len(".log")]
	if digits == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// appendRecord frames one record onto buf.
func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	off := len(buf)
	buf = append(buf, kind, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf[off+1:], uint32(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[off:], castagnoli)
	var tr [recTrailer]byte
	binary.BigEndian.PutUint32(tr[:], sum)
	return append(buf, tr[:]...)
}

// parseRecord reads the record at data[off:]. ok=false means the bytes
// from off on do not hold one whole, checksum-clean record — the torn-tail
// truncation point.
func parseRecord(data []byte, off int) (kind byte, payload []byte, next int, ok bool) {
	if off+recHeader+recTrailer > len(data) {
		return 0, nil, 0, false
	}
	kind = data[off]
	if kind != recData && kind != recAck {
		return 0, nil, 0, false
	}
	n := int(binary.BigEndian.Uint32(data[off+1:]))
	if n > backhaul.MaxMessageSize || off+recHeader+n+recTrailer > len(data) {
		return 0, nil, 0, false
	}
	body := data[off : off+recHeader+n]
	want := binary.BigEndian.Uint32(data[off+recHeader+n:])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, 0, false
	}
	return kind, body[recHeader:], off + recHeader + n + recTrailer, true
}

// Open opens (creating if needed) the WAL in opts.Dir, runs recovery, and
// returns the log plus every unacknowledged entry oldest-first. Recovery
// truncates each file at its first bad frame (counting the cut on
// wal_truncated_records_total / wal_truncated_bytes_total), drops
// fully-acked files, and never fails on corrupt contents — only on
// filesystem errors that make the directory unusable.
func Open(opts Options) (*Log, []Entry, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = faults.OS()
	}
	if opts.FileBytes <= 0 {
		opts.FileBytes = DefaultFileBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.Codec == (backhaul.SegmentCodec{}) {
		opts.Codec = backhaul.DefaultCodec
	}
	if opts.Metrics == nil {
		opts.Metrics = &Metrics{}
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	names, err := opts.FS.List(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}

	l := &Log{opts: opts, nextID: 1, nextSeq: 1, loc: make(map[uint64]*walFile)}
	type rec struct {
		id   uint64
		seg  backhaul.Segment
		file *walFile
	}
	var (
		data     []rec
		acks     = make(map[uint64]struct{})
		hadFiles bool
	)
	seqs := make([]uint64, 0, len(names))
	for _, name := range names {
		if seq, ok := parseFileName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		hadFiles = true
		path := filepath.Join(opts.Dir, fileName(seq))
		raw, err := opts.FS.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: recover %s: %w", path, err)
		}
		f := &walFile{seq: seq, path: path, unacked: make(map[uint64]struct{})}
		off := 0
		for off < len(raw) {
			kind, payload, next, ok := parseRecord(raw, off)
			if ok && kind == recData {
				id, seg, err := backhaul.DecodeSegmentSeq(payload)
				if err != nil {
					// The frame CRC held but the segment inside is not
					// decodable: treat it as the first bad frame too.
					ok = false
				} else {
					data = append(data, rec{id: id, seg: seg, file: f})
					f.unacked[id] = struct{}{}
					if id >= l.nextID {
						l.nextID = id + 1
					}
				}
			}
			if ok && kind == recAck {
				if len(payload) != 8 {
					ok = false
				} else {
					acks[binary.BigEndian.Uint64(payload)] = struct{}{}
				}
			}
			if !ok {
				// First bad frame: cut the file here. Everything after is
				// indistinguishable from garbage, so it is one truncation
				// event covering len(raw)-off bytes.
				cut := int64(len(raw) - off)
				if err := opts.FS.Truncate(path, int64(off)); err != nil {
					return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
				}
				raw = raw[:off]
				opts.Metrics.TruncatedRec.Inc()
				opts.Metrics.TruncatedB.Add(uint64(cut))
				opts.Journal.Record("wal_tail_truncate", cut)
				break
			}
			off = next
		}
		f.size = int64(len(raw))
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1
		}
		l.files = append(l.files, f)
	}

	// Retire acked records, then drop files with nothing live. The newest
	// file is kept as the append target only if it is still under the
	// rotation cap; recovery of a full directory otherwise starts fresh.
	var entries []Entry
	for _, r := range data {
		if _, ok := acks[r.id]; ok {
			delete(r.file.unacked, r.id)
			continue
		}
		entries = append(entries, Entry{ID: r.id, Seg: r.seg})
		l.loc[r.id] = r.file
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	kept := l.files[:0]
	for i, f := range l.files {
		lastUsable := i == len(l.files)-1 && f.size < opts.FileBytes
		if len(f.unacked) == 0 && !lastUsable {
			if err := opts.FS.Remove(f.path); err != nil {
				return nil, nil, fmt.Errorf("wal: compact %s: %w", f.path, err)
			}
			opts.Metrics.Compacted.Inc()
			opts.Journal.Record("wal_file_compact", int64(f.seq))
			continue
		}
		kept = append(kept, f)
		l.live += f.size
	}
	l.files = kept

	if err := l.openTail(); err != nil {
		return nil, nil, err
	}
	opts.Metrics.LiveBytes.Set(l.live)
	opts.Metrics.Replayed.Add(uint64(len(entries)))
	if hadFiles {
		l.opts.Journal.Record("wal_window_recover", int64(len(entries)))
	}
	return l, entries, nil
}

// openTail establishes the append target at the end of recovery: rotate to
// a fresh file when no recovered file survived (or the newest is at the
// rotation cap), otherwise reopen the newest for appending. Open is
// single-threaded, but taking l.mu keeps the rotation helpers under the
// same lock discipline as the steady state.
func (l *Log) openTail() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.files) == 0 || l.files[len(l.files)-1].size >= l.opts.FileBytes {
		return l.rotateLocked()
	}
	tail := l.files[len(l.files)-1]
	fh, err := l.opts.FS.OpenAppend(tail.path)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", tail.path, err)
	}
	l.active = fh
	return nil
}

// rotateLocked closes the current append target and starts a new file.
// Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if l.active != nil {
		l.syncLocked()
		if err := l.active.Close(); err != nil {
			l.active = nil
			l.wedgeErr = fmt.Errorf("%w (close on rotate: %v)", ErrWedged, err)
			return l.wedgeErr
		}
		l.active = nil
	}
	l.compactLocked()
	f := &walFile{
		seq:     l.nextSeq,
		path:    filepath.Join(l.opts.Dir, fileName(l.nextSeq)),
		unacked: make(map[uint64]struct{}),
	}
	l.nextSeq++
	fh, err := l.opts.FS.OpenAppend(f.path)
	if err != nil {
		// No usable append target: wedge rather than leave writeRecordLocked
		// facing a nil handle.
		l.wedgeErr = fmt.Errorf("%w (open %s: %v)", ErrWedged, f.path, err)
		return l.wedgeErr
	}
	l.files = append(l.files, f)
	l.active = fh
	return nil
}

// compactLocked removes fully-acked non-active files (lazy compaction).
// Callers hold l.mu.
func (l *Log) compactLocked() {
	kept := l.files[:0]
	for i, f := range l.files {
		if i == len(l.files)-1 && l.active != nil {
			kept = append(kept, f) // never remove the live append target
			continue
		}
		if len(f.unacked) > 0 {
			kept = append(kept, f)
			continue
		}
		if err := l.opts.FS.Remove(f.path); err != nil {
			kept = append(kept, f) // try again on the next compaction pass
			continue
		}
		l.live -= f.size
		l.opts.Metrics.Compacted.Inc()
		l.opts.Metrics.LiveBytes.Set(l.live)
		l.opts.Journal.Record("wal_file_compact", int64(f.seq))
	}
	l.files = kept
}

// syncLocked flushes the active file, counting successes. A sync failure
// is charged to wal_append_errors_total but does not wedge the log: the
// records are on their way to disk, and recovery truncation handles
// whatever a crash tears. Callers hold l.mu.
func (l *Log) syncLocked() {
	if l.active == nil {
		return
	}
	if err := l.active.Sync(); err != nil {
		l.opts.Metrics.AppendErrors.Inc()
		return
	}
	l.since = 0
	l.opts.Metrics.Synced.Inc()
}

// writeRecordLocked appends one framed record to the active file with
// truncate-back repair: a failed or short write rolls the file back to the
// previous record boundary so the tail stays parseable; if even the
// rollback fails the log wedges. Callers hold l.mu.
func (l *Log) writeRecordLocked(kind byte, payload []byte) error {
	tail := l.files[len(l.files)-1]
	if tail.size+int64(recHeader+len(payload)+recTrailer) > l.opts.FileBytes && tail.size > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
		tail = l.files[len(l.files)-1]
	}
	rec := appendRecord(nil, kind, payload)
	n, err := l.active.Write(rec)
	if err != nil || n != len(rec) {
		l.opts.Metrics.AppendErrors.Inc()
		if terr := l.opts.FS.Truncate(tail.path, tail.size); terr != nil {
			l.wedgeErr = fmt.Errorf("%w (write: %v, rollback: %v)", ErrWedged, err, terr)
			return l.wedgeErr
		}
		if err == nil {
			err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(rec))
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	tail.size += int64(len(rec))
	l.live += int64(len(rec))
	l.opts.Metrics.LiveBytes.Set(l.live)
	switch l.opts.Sync {
	case SyncEachRecord:
		l.syncLocked()
	case SyncBatched:
		l.since++
		if l.since >= l.opts.SyncEvery {
			l.syncLocked()
		}
	}
	return nil
}

// Append journals one admitted segment and returns its id. The caller
// keeps the id with the in-memory item and passes it to Ack when the
// segment has been finally handled. An error means the record is not
// durable (the segment should still ship from memory); after ErrWedged or
// ErrClosed every further Append fails fast.
func (l *Log) Append(seg backhaul.Segment) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.wedgeErr != nil {
		return 0, l.wedgeErr
	}
	encoded, err := l.opts.Codec.Encode(seg)
	if err != nil {
		l.opts.Metrics.AppendErrors.Inc()
		return 0, fmt.Errorf("wal: encode: %w", err)
	}
	id := l.nextID
	payload := make([]byte, 8+len(encoded))
	binary.BigEndian.PutUint64(payload, id)
	copy(payload[8:], encoded)
	if err := l.writeRecordLocked(recData, payload); err != nil {
		return 0, err
	}
	l.nextID++
	tail := l.files[len(l.files)-1]
	tail.unacked[id] = struct{}{}
	l.loc[id] = tail
	l.opts.Metrics.Appended.Inc()
	return id, nil
}

// Ack journals that the record with the given id has been finally handled
// (cloud report applied, busy-rejected, or drained through the degraded
// path) and lazily compacts any file left with no live records. Unknown
// ids are ignored. Disk trouble while writing the ack is absorbed: the
// worst outcome is a post-crash replay the cloud deduplicates.
func (l *Log) Ack(id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.loc[id]
	if !ok || l.closed {
		return
	}
	delete(l.loc, id)
	delete(f.unacked, id)
	l.opts.Metrics.Acked.Inc()
	if l.wedgeErr == nil {
		var payload [8]byte
		binary.BigEndian.PutUint64(payload[:], id)
		// A lost ack record only costs a deduplicated replay;
		// writeRecordLocked already counts the fault.
		_ = l.writeRecordLocked(recAck, payload[:])
	}
	if len(f.unacked) == 0 && f != l.files[len(l.files)-1] {
		l.compactLocked()
	}
}

// Backlog reports the live (appended, unacked) record count — what a
// restart would replay.
func (l *Log) Backlog() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.loc)
}

// LiveBytes reports the bytes currently held across all WAL files.
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.live
}

// Wedged returns the sticky unrepairable-fault error, if any.
func (l *Log) Wedged() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedgeErr
}

// Close syncs and closes the log. A clean close with an empty backlog
// removes every WAL file: the next open recovers nothing, which is exactly
// the state the acks describe.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var firstErr error
	if l.active != nil {
		l.syncLocked()
		if err := l.active.Close(); err != nil {
			firstErr = err
		}
		l.active = nil
	}
	if len(l.loc) == 0 {
		for _, f := range l.files {
			if err := l.opts.FS.Remove(f.path); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			l.live -= f.size
			l.opts.Metrics.Compacted.Inc()
			l.opts.Metrics.LiveBytes.Set(l.live)
			l.opts.Journal.Record("wal_file_compact", int64(f.seq))
		}
		l.files = nil
	}
	return firstErr
}

// Abandon closes the file handle without syncing or compacting — the
// SIGKILL path of the restart soak: whatever the filesystem has is what
// recovery will see.
func (l *Log) Abandon() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	if l.active != nil {
		// Abandon models a crash; nothing can act on a close error.
		_ = l.active.Close()
		l.active = nil
	}
}
