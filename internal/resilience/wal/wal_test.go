package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/faults"
	"repro/internal/obs"
)

// testSeg builds a deterministic segment whose Start survives the codec
// round-trip exactly (CU8 quantizes samples, so tests key on Start and
// sample count).
func testSeg(start int64, n int) backhaul.Segment {
	samples := make([]complex128, n)
	for i := range samples {
		samples[i] = complex(float64(i%7)/10-0.3, float64((i+3)%5)/10-0.2)
	}
	return backhaul.Segment{Start: start, SampleRate: 1e6, Samples: samples}
}

// openTest opens a WAL with a fresh metrics set, failing the test on error.
func openTest(t *testing.T, o Options) (*Log, []Entry, *Metrics) {
	t.Helper()
	if o.Metrics == nil {
		o.Metrics = NewMetrics(obs.NewRegistry())
	}
	l, entries, err := Open(o)
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	return l, entries, o.Metrics
}

// mustAppend appends n segments with Starts 100, 200, ... and returns the
// assigned ids.
func mustAppend(t *testing.T, l *Log, n int) []uint64 {
	t.Helper()
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		id, err := l.Append(testSeg(int64(100*(i+1)), 16))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func entryStarts(entries []Entry) []int64 {
	out := make([]int64, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Seg.Start)
	}
	return out
}

func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := faults.OS().List(dir)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	return names
}

func TestWALRoundTripReplay(t *testing.T) {
	dir := t.TempDir()
	j := obs.NewJournal(16)
	l, entries, _ := openTest(t, Options{Dir: dir, Journal: j})
	if len(entries) != 0 {
		t.Fatalf("fresh dir replayed %d entries", len(entries))
	}
	mustAppend(t, l, 5)
	if got := l.Backlog(); got != 5 {
		t.Fatalf("backlog = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, entries, m2 := openTest(t, Options{Dir: dir, Journal: j})
	defer l2.Abandon()
	want := []int64{100, 200, 300, 400, 500}
	got := entryStarts(entries)
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order: starts %v, want %v", got, want)
		}
		if i > 0 && entries[i].ID <= entries[i-1].ID {
			t.Fatalf("ids not ascending: %d then %d", entries[i-1].ID, entries[i].ID)
		}
		if len(entries[i].Seg.Samples) != 16 {
			t.Fatalf("entry %d lost samples: %d", i, len(entries[i].Seg.Samples))
		}
	}
	if v := m2.Replayed.Value(); v != 5 {
		t.Fatalf("wal_records_replayed_total = %d, want 5", v)
	}
	var recovered *obs.Event
	for _, e := range j.Recent() {
		if e.Name == "wal_window_recover" {
			ev := e
			recovered = &ev
		}
	}
	if recovered == nil || recovered.Value != 5 {
		t.Fatalf("wal_window_recover event = %+v, want value 5", recovered)
	}
}

func TestWALAckRetires(t *testing.T) {
	dir := t.TempDir()
	l, _, m := openTest(t, Options{Dir: dir})
	ids := mustAppend(t, l, 5)
	l.Ack(ids[1])
	l.Ack(ids[3])
	l.Ack(987654) // unknown id: ignored
	if v := m.Acked.Value(); v != 2 {
		t.Fatalf("wal_records_acked_total = %d, want 2", v)
	}
	if got := l.Backlog(); got != 3 {
		t.Fatalf("backlog = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, entries, _ := openTest(t, Options{Dir: dir})
	defer l2.Abandon()
	want := []int64{100, 300, 500}
	got := entryStarts(entries)
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("replayed starts %v, want %v", got, want)
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// FileBytes 1: every record overflows the cap, so each lands in its own
	// file and the rotation/compaction machinery runs on every append.
	l, _, m := openTest(t, Options{Dir: dir, FileBytes: 1})
	ids := mustAppend(t, l, 3)
	if n := len(walFiles(t, dir)); n != 3 {
		t.Fatalf("%d files after 3 appends, want 3 (one per file)", n)
	}
	l.Ack(ids[0])
	if m.Compacted.Value() == 0 {
		t.Fatal("acking the only record of a sealed file did not compact it")
	}
	for _, name := range walFiles(t, dir) {
		if name == fileName(1) {
			t.Fatal("fully-acked file survived compaction")
		}
	}
	l.Ack(ids[1])
	l.Ack(ids[2])
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Clean close with an empty backlog clears the directory entirely.
	if n := len(walFiles(t, dir)); n != 0 {
		t.Fatalf("%d files after clean close with empty backlog, want 0", n)
	}
	if l.LiveBytes() != 0 {
		t.Fatalf("live bytes %d after full compaction, want 0", l.LiveBytes())
	}
}

func TestWALTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openTest(t, Options{Dir: dir, Sync: SyncEachRecord})
	mustAppend(t, l, 3)
	l.Abandon()

	names := walFiles(t, dir)
	if len(names) != 1 {
		t.Fatalf("files = %v, want one", names)
	}
	path := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear one byte off the last record's checksum trailer.
	if err := os.Truncate(path, int64(len(raw)-1)); err != nil {
		t.Fatal(err)
	}

	j := obs.NewJournal(16)
	l2, entries, m := openTest(t, Options{Dir: dir, Journal: j})
	defer l2.Abandon()
	if got := entryStarts(entries); len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("replayed starts %v, want [100 200]", got)
	}
	if v := m.TruncatedRec.Value(); v != 1 {
		t.Fatalf("wal_truncated_records_total = %d, want 1", v)
	}
	// The cut covers the whole torn record minus the byte we removed.
	_, _, recLen, ok := parseRecord(raw, 0)
	if !ok {
		t.Fatal("test setup: first record unparseable")
	}
	if v := m.TruncatedB.Value(); v != uint64(recLen-1) {
		t.Fatalf("wal_truncated_bytes_total = %d, want %d", v, recLen-1)
	}
	found := false
	for _, e := range j.Recent() {
		if e.Name == "wal_tail_truncate" {
			found = true
		}
	}
	if !found {
		t.Fatal("no wal_tail_truncate event journaled")
	}
}

func TestWALCorruptRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openTest(t, Options{Dir: dir, Sync: SyncEachRecord})
	mustAppend(t, l, 3)
	l.Abandon()

	path := filepath.Join(dir, walFiles(t, dir)[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, first, ok := parseRecord(raw, 0)
	if !ok {
		t.Fatal("test setup: first record unparseable")
	}
	// Flip a byte inside the second record's payload: its frame CRC no
	// longer holds, so recovery must cut there and drop record three with it.
	raw[first+recHeader+4] ^= 0x5A
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, entries, m := openTest(t, Options{Dir: dir})
	defer l2.Abandon()
	if got := entryStarts(entries); len(got) != 1 || got[0] != 100 {
		t.Fatalf("replayed starts %v, want [100]", got)
	}
	if v := m.TruncatedRec.Value(); v != 1 {
		t.Fatalf("wal_truncated_records_total = %d, want 1", v)
	}
	if v := m.TruncatedB.Value(); v != uint64(len(raw)-first) {
		t.Fatalf("wal_truncated_bytes_total = %d, want %d", v, len(raw)-first)
	}
}

func TestWALEmptyDir(t *testing.T) {
	dir := t.TempDir()
	j := obs.NewJournal(16)
	l, entries, m := openTest(t, Options{Dir: dir, Journal: j})
	defer l.Abandon()
	if len(entries) != 0 || m.Replayed.Value() != 0 || m.TruncatedRec.Value() != 0 {
		t.Fatalf("empty dir recovered entries=%d replayed=%d truncated=%d",
			len(entries), m.Replayed.Value(), m.TruncatedRec.Value())
	}
	// A dir that held no WAL files is a fresh start, not a recovery.
	for _, e := range j.Recent() {
		if e.Name == "wal_window_recover" {
			t.Fatal("fresh dir journaled wal_window_recover")
		}
	}
}

func TestWALZeroLengthFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, fileName(5)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, entries, m := openTest(t, Options{Dir: dir})
	if len(entries) != 0 || m.TruncatedRec.Value() != 0 {
		t.Fatalf("zero-length file: entries=%d truncated=%d, want 0/0", len(entries), m.TruncatedRec.Value())
	}
	// The empty file is a usable append target; new records land in it.
	if _, err := l.Append(testSeg(700, 8)); err != nil {
		t.Fatalf("append into recovered empty file: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, entries, _ := openTest(t, Options{Dir: dir})
	defer l2.Abandon()
	if got := entryStarts(entries); len(got) != 1 || got[0] != 700 {
		t.Fatalf("replayed starts %v, want [700]", got)
	}
}

func TestWALAckPastLastDataRecord(t *testing.T) {
	dir := t.TempDir()
	// Hand-build a file: one data record (id 1) followed by an ack for id 7,
	// which never existed — a crash can persist an ack whose data record was
	// lost with an unsynced earlier tail.
	encoded, err := backhaul.DefaultCodec.Encode(testSeg(100, 16))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8+len(encoded))
	binary.BigEndian.PutUint64(payload, 1)
	copy(payload[8:], encoded)
	raw := appendRecord(nil, recData, payload)
	var ack [8]byte
	binary.BigEndian.PutUint64(ack[:], 7)
	raw = appendRecord(raw, recAck, ack[:])
	if err := os.WriteFile(filepath.Join(dir, fileName(1)), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l, entries, m := openTest(t, Options{Dir: dir})
	if got := entryStarts(entries); len(got) != 1 || got[0] != 100 {
		t.Fatalf("replayed starts %v, want [100]", got)
	}
	if m.TruncatedRec.Value() != 0 {
		t.Fatalf("phantom ack truncated %d records, want 0", m.TruncatedRec.Value())
	}
	// Ids resume past the highest recovered data id, not the phantom ack's.
	id, err := l.Append(testSeg(900, 8))
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("next id = %d, want 2", id)
	}
	l.Abandon()
}

func TestWALReplayOrderingAcrossRotatedFiles(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openTest(t, Options{Dir: dir, FileBytes: 1})
	ids := mustAppend(t, l, 4) // one record per file
	l.Ack(ids[0])
	l.Ack(ids[2])
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, entries, _ := openTest(t, Options{Dir: dir, FileBytes: 1})
	defer l2.Abandon()
	got := entryStarts(entries)
	if len(got) != 2 || got[0] != 200 || got[1] != 400 {
		t.Fatalf("interleaved files replayed starts %v, want [200 400]", got)
	}
	if entries[0].ID != ids[1] || entries[1].ID != ids[3] {
		t.Fatalf("replayed ids %d,%d, want %d,%d", entries[0].ID, entries[1].ID, ids[1], ids[3])
	}
}

func TestWALShortWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	fs := faults.NewFS(faults.OS(), 1, faults.FSPlan{Events: []faults.FSEvent{
		{Op: faults.FSWriteShort, Nth: 1, Keep: 3},
	}})
	l, _, m := openTest(t, Options{Dir: dir, FS: fs})
	if _, err := l.Append(testSeg(100, 16)); err == nil {
		t.Fatal("append through a short write reported success")
	}
	if v := m.AppendErrors.Value(); v != 1 {
		t.Fatalf("wal_append_errors_total = %d, want 1", v)
	}
	if l.Wedged() != nil {
		t.Fatalf("repairable short write wedged the log: %v", l.Wedged())
	}
	// The rollback restored the record boundary, so the next append is clean.
	if _, err := l.Append(testSeg(200, 16)); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, entries, m2 := openTest(t, Options{Dir: dir})
	defer l2.Abandon()
	if got := entryStarts(entries); len(got) != 1 || got[0] != 200 {
		t.Fatalf("replayed starts %v, want [200]", got)
	}
	if m2.TruncatedRec.Value() != 0 {
		t.Fatalf("rollback left a torn tail: truncated %d records", m2.TruncatedRec.Value())
	}
}

func TestWALSyncErrorDoesNotWedge(t *testing.T) {
	dir := t.TempDir()
	fs := faults.NewFS(faults.OS(), 1, faults.FSPlan{Events: []faults.FSEvent{
		{Op: faults.FSSyncErr, Nth: 1},
	}})
	l, _, m := openTest(t, Options{Dir: dir, FS: fs, Sync: SyncEachRecord})
	if _, err := l.Append(testSeg(100, 16)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if v := m.AppendErrors.Value(); v != 1 {
		t.Fatalf("wal_append_errors_total = %d, want 1 (failed sync)", v)
	}
	if l.Wedged() != nil {
		t.Fatalf("sync failure wedged the log: %v", l.Wedged())
	}
	if _, err := l.Append(testSeg(200, 16)); err != nil {
		t.Fatalf("append after sync failure: %v", err)
	}
	if v := m.Synced.Value(); v != 1 {
		t.Fatalf("wal_syncs_total = %d, want 1 (second append's sync)", v)
	}
	l.Abandon()
}

func TestWALWedgeAfterCrashFailsFast(t *testing.T) {
	dir := t.TempDir()
	fs := faults.NewFS(faults.OS(), 1, faults.FSPlan{})
	l, _, _ := openTest(t, Options{Dir: dir, FS: fs})
	mustAppend(t, l, 1)
	if err := fs.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// The write fails and the rollback truncate fails too: the log wedges.
	if _, err := l.Append(testSeg(200, 16)); err == nil {
		t.Fatal("append on crashed filesystem succeeded")
	}
	if l.Wedged() == nil {
		t.Fatal("unrepairable fault did not wedge the log")
	}
	if _, err := l.Append(testSeg(300, 16)); err == nil || l.Wedged() == nil {
		t.Fatal("wedged log accepted a record")
	}
	l.Abandon()
	if _, err := l.Append(testSeg(400, 16)); err == nil {
		t.Fatal("abandoned log accepted a record")
	}
}

// TestWALFaultMatrix sweeps seeded fault plans and crash points through a
// full journal/ack/crash/recover cycle: recovery must never fail, never
// panic, never replay an id that was not successfully appended, and never
// duplicate or reorder entries — whatever the plan tore.
func TestWALFaultMatrix(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		dir := t.TempDir()
		fs := faults.NewFS(faults.OS(), seed, faults.GenFSPlan(seed, 4, 24))
		reg := obs.NewRegistry()
		l, entries, err := Open(Options{
			Dir: dir, FS: fs, FileBytes: 512, SyncEvery: 2,
			Metrics: NewMetrics(reg),
		})
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		if len(entries) != 0 {
			t.Fatalf("seed %d: fresh dir replayed %d entries", seed, len(entries))
		}
		appended := make(map[uint64]int64) // id -> Start
		for i := 0; i < 12; i++ {
			start := int64(100 * (i + 1))
			if id, err := l.Append(testSeg(start, 16)); err == nil {
				appended[id] = start
			}
		}
		// Ack the two oldest successful appends, in id order.
		acked := make(map[uint64]struct{})
		for id := uint64(1); id <= 13 && len(acked) < 2; id++ {
			if _, ok := appended[id]; ok {
				l.Ack(id)
				acked[id] = struct{}{}
			}
		}
		if err := fs.Crash(); err != nil {
			t.Fatalf("seed %d: crash: %v", seed, err)
		}
		l.Abandon()

		// Recover on the bare OS, as a restarted process would.
		m2 := NewMetrics(obs.NewRegistry())
		l2, recovered, err := Open(Options{Dir: dir, Metrics: m2})
		if err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		var prev uint64
		for _, e := range recovered {
			want, ok := appended[e.ID]
			if !ok {
				t.Fatalf("seed %d: recovered id %d was never successfully appended", seed, e.ID)
			}
			if e.Seg.Start != want {
				t.Fatalf("seed %d: id %d recovered Start %d, want %d", seed, e.ID, e.Seg.Start, want)
			}
			if e.ID <= prev {
				t.Fatalf("seed %d: replay ids not strictly ascending at %d", seed, e.ID)
			}
			prev = e.ID
		}
		if uint64(len(recovered)) != m2.Replayed.Value() {
			t.Fatalf("seed %d: replayed counter %d != %d entries", seed, m2.Replayed.Value(), len(recovered))
		}
		// A second recovery sees exactly what the first one left behind:
		// truncation converged in one pass.
		if err := l2.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
		m3 := NewMetrics(obs.NewRegistry())
		l3, again, err := Open(Options{Dir: dir, Metrics: m3})
		if err != nil {
			t.Fatalf("seed %d: second recover: %v", seed, err)
		}
		if len(again) != len(recovered) {
			t.Fatalf("seed %d: second recovery replayed %d, first %d", seed, len(again), len(recovered))
		}
		for i := range again {
			if again[i].ID != recovered[i].ID {
				t.Fatalf("seed %d: second recovery id %d != %d", seed, again[i].ID, recovered[i].ID)
			}
		}
		if m3.TruncatedRec.Value() != 0 {
			t.Fatalf("seed %d: second recovery truncated %d records; first pass did not converge", seed, m3.TruncatedRec.Value())
		}
		l3.Abandon()
	}
}
