package resilience

import (
	"sync"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience/wal"
)

func durSeg(start int64) backhaul.Segment {
	samples := make([]complex128, 8)
	for i := range samples {
		samples[i] = complex(float64(i)/10, -float64(i)/20)
	}
	return backhaul.Segment{Start: start, SampleRate: 1e6, Samples: samples}
}

func openDurable(t *testing.T, dir string, capacity int) (*DurableSpool, []wal.Entry, *wal.Metrics) {
	t.Helper()
	m := wal.NewMetrics(obs.NewRegistry())
	log, entries, err := wal.Open(wal.Options{Dir: dir, Metrics: m})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	return NewDurableSpool(capacity, log), entries, m
}

func TestDurableSpoolJournalsAndAcks(t *testing.T) {
	dir := t.TempDir()
	d, entries, m := openDurable(t, dir, 4)
	if len(entries) != 0 {
		t.Fatalf("fresh dir recovered %d entries", len(entries))
	}
	for i := 0; i < 3; i++ {
		if _, dropped := d.Put(Item{Seg: durSeg(int64(100 * (i + 1)))}); dropped {
			t.Fatalf("put %d dropped", i)
		}
	}
	if v := m.Appended.Value(); v != 3 {
		t.Fatalf("wal_records_appended_total = %d, want 3", v)
	}
	// Consume one and ack it: the record retires.
	it := <-d.C()
	if it.WAL == 0 {
		t.Fatal("spooled item carries no WAL id")
	}
	d.Ack(it)
	if v := m.Acked.Value(); v != 1 {
		t.Fatalf("wal_records_acked_total = %d, want 1", v)
	}
	d.Log().Abandon()

	// Restart: the two unacked segments replay, oldest first.
	d2, entries, _ := openDurable(t, dir, 4)
	if len(entries) != 2 || entries[0].Seg.Start != 200 || entries[1].Seg.Start != 300 {
		starts := make([]int64, len(entries))
		for i, e := range entries {
			starts[i] = e.Seg.Start
		}
		t.Fatalf("recovered starts %v, want [200 300]", starts)
	}
	// Requeued recovered entries keep their ids and are not journaled again.
	before := d2.Log().Backlog()
	if _, dropped := d2.Put(Item{Seg: entries[0].Seg, WAL: entries[0].ID}); dropped {
		t.Fatal("requeue dropped")
	}
	if d2.Log().Backlog() != before {
		t.Fatalf("requeuing a recovered entry grew the backlog %d -> %d", before, d2.Log().Backlog())
	}
	d2.Log().Abandon()
}

// TestDurableSpoolAppendErrorAbsorbed checks the durability contract under
// disk failure: the segment still ships from memory (Put succeeds), it just
// carries no WAL id and the error is counted.
func TestDurableSpoolAppendErrorAbsorbed(t *testing.T) {
	dir := t.TempDir()
	m := wal.NewMetrics(obs.NewRegistry())
	fs := faults.NewFS(faults.OS(), 1, faults.FSPlan{Events: []faults.FSEvent{
		{Op: faults.FSWriteErr, Nth: 1},
	}})
	log, _, err := wal.Open(wal.Options{Dir: dir, FS: fs, Metrics: m})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	d := NewDurableSpool(4, log)
	if _, dropped := d.Put(Item{Seg: durSeg(100)}); dropped {
		t.Fatal("put dropped on append error")
	}
	it := <-d.C()
	if it.WAL != 0 {
		t.Fatalf("item journaled through a failed write carries id %d", it.WAL)
	}
	if v := m.AppendErrors.Value(); v != 1 {
		t.Fatalf("wal_append_errors_total = %d, want 1", v)
	}
	d.Ack(it) // no-op for id 0; must not panic
	log.Abandon()
}

// TestSpoolPutCloseConcurrent races many producers against Close: every put
// item must be accounted exactly once — drained from the channel or reported
// dropped back to its producer — and nothing may panic on the closed channel.
func TestSpoolPutCloseConcurrent(t *testing.T) {
	const (
		producers = 8
		perProd   = 200
	)
	for round := 0; round < 20; round++ {
		// Capacity covers every item, so pre-Close puts never evict: any
		// dropped report is the Put-after-Close path.
		s := NewSpool(producers * perProd)
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			dropped = make(map[int64]int)
		)
		start := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				for i := 0; i < perProd; i++ {
					id := int64(p*perProd + i)
					if ev, drop := s.Put(Item{Seg: backhaul.Segment{Start: id}}); drop {
						mu.Lock()
						dropped[ev.Seg.Start]++
						mu.Unlock()
					}
				}
			}(p)
		}
		close(start)
		s.Close() // race with the producers on purpose
		wg.Wait()

		seen := make(map[int64]int)
		for it := range s.C() {
			seen[it.Seg.Start]++
		}
		for id := int64(0); id < producers*perProd; id++ {
			total := seen[id] + dropped[id]
			if total != 1 {
				t.Fatalf("round %d: item %d accounted %d times (drained %d, dropped %d)",
					round, id, total, seen[id], dropped[id])
			}
		}
	}
}
