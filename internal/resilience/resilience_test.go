package resilience

import (
	"net"
	"testing"
	"time"

	"repro/internal/backhaul"
)

func TestBackoffDeterministic(t *testing.T) {
	t.Parallel()
	pol := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Multiplier: 2, Seed: 42}
	a, b := NewBackoff(pol), NewBackoff(pol)
	for i := 0; i < pol.MaxAttempts; i++ {
		da, oka := a.Next()
		db, okb := b.Next()
		if !oka || !okb {
			t.Fatalf("attempt %d: exhausted too early (oka=%v okb=%v)", i, oka, okb)
		}
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		// Equal jitter: delay in [step/2, step).
		step := float64(pol.BaseDelay)
		for j := 0; j < i; j++ {
			step *= pol.Multiplier
			if step >= float64(pol.MaxDelay) {
				step = float64(pol.MaxDelay)
				break
			}
		}
		if float64(da) < step/2 || float64(da) >= step {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, da, time.Duration(step/2), time.Duration(step))
		}
	}
	if _, ok := a.Next(); ok {
		t.Fatal("expected exhaustion after MaxAttempts")
	}
	if a.Attempts() != pol.MaxAttempts {
		t.Fatalf("Attempts = %d, want %d", a.Attempts(), pol.MaxAttempts)
	}
}

func TestBackoffResetRestoresBudget(t *testing.T) {
	t.Parallel()
	b := NewBackoff(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 7})
	for i := 0; i < 2; i++ {
		if _, ok := b.Next(); !ok {
			t.Fatalf("attempt %d should be within budget", i)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("budget should be exhausted")
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Attempts after Reset = %d", b.Attempts())
	}
	if _, ok := b.Next(); !ok {
		t.Fatal("Reset should restore the retry budget")
	}
	if err := b.Err(net.ErrClosed); err == nil {
		t.Fatal("Err should wrap the last failure")
	}
}

func TestBackoffDefaults(t *testing.T) {
	t.Parallel()
	b := NewBackoff(RetryPolicy{})
	n := 0
	for {
		if _, ok := b.Next(); !ok {
			break
		}
		n++
	}
	if n != DefaultMaxAttempts {
		t.Fatalf("zero policy allowed %d attempts, want %d", n, DefaultMaxAttempts)
	}
}

func item(start int64) Item {
	return Item{Seg: backhaul.Segment{Start: start}}
}

func TestSpoolDropOldest(t *testing.T) {
	t.Parallel()
	s := NewSpool(3)
	for i := int64(0); i < 3; i++ {
		if _, dropped := s.Put(item(i)); dropped {
			t.Fatalf("unexpected drop filling spool at %d", i)
		}
	}
	// Two more puts evict the two oldest, in order.
	for i := int64(3); i < 5; i++ {
		ev, dropped := s.Put(item(i))
		if !dropped {
			t.Fatalf("put %d: expected eviction", i)
		}
		if ev.Seg.Start != i-3 {
			t.Fatalf("put %d evicted start %d, want %d (drop-oldest)", i, ev.Seg.Start, i-3)
		}
	}
	if s.Len() != 3 || s.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d, want 3/3", s.Len(), s.Cap())
	}
	s.Close()
	var got []int64
	for it := range s.C() {
		got = append(got, it.Seg.Start)
	}
	want := []int64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestSpoolPutAfterClose(t *testing.T) {
	t.Parallel()
	s := NewSpool(2)
	s.Close()
	s.Close() // idempotent
	ev, dropped := s.Put(item(9))
	if !dropped || ev.Seg.Start != 9 {
		t.Fatalf("Put after Close = (%v, %v), want the item itself dropped", ev.Seg.Start, dropped)
	}
}

func TestSpoolMinimumCapacity(t *testing.T) {
	t.Parallel()
	s := NewSpool(0)
	if s.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamped to 1", s.Cap())
	}
	if _, dropped := s.Put(item(1)); dropped {
		t.Fatal("first put should fit")
	}
	ev, dropped := s.Put(item(2))
	if !dropped || ev.Seg.Start != 1 {
		t.Fatalf("second put should evict first, got (%d, %v)", ev.Seg.Start, dropped)
	}
}

func TestWithDeadlinesTimeout(t *testing.T) {
	t.Parallel()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rw := WithDeadlines(a, 20*time.Millisecond, 20*time.Millisecond)
	if rw == any(a) {
		t.Fatal("pipe conn supports deadlines; expected a wrapper")
	}
	buf := make([]byte, 1)
	_, err := rw.Read(buf) // nobody writes: must trip the read deadline
	if err == nil || !IsTimeout(err) {
		t.Fatalf("Read err = %v, want timeout", err)
	}
	_, err = rw.Write(make([]byte, 1<<16)) // nobody reads: must trip the write deadline
	if err == nil || !IsTimeout(err) {
		t.Fatalf("Write err = %v, want timeout", err)
	}
}

func TestWithDeadlinesPassThrough(t *testing.T) {
	t.Parallel()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := WithDeadlines(a, 0, 0); got != any(a) {
		t.Fatal("zero timeouts should return the stream unchanged")
	}
	var buf nonDeadlineRW
	if got := WithDeadlines(&buf, time.Second, time.Second); got != any(&buf) {
		t.Fatal("non-deadline stream should pass through unchanged")
	}
}

type nonDeadlineRW struct{}

func (*nonDeadlineRW) Read(p []byte) (int, error)  { return 0, nil }
func (*nonDeadlineRW) Write(p []byte) (int, error) { return len(p), nil }
