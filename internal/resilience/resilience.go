// Package resilience holds the fault-tolerance primitives the GalioT
// pipeline composes to survive a flaky edge-to-cloud link: a deterministic
// exponential backoff for reconnect loops, a bounded drop-oldest segment
// spool that keeps the detection pipeline consuming captures during a
// backhaul outage, and a deadline-arming connection wrapper so neither end
// of the backhaul can block forever on a dead peer.
//
// The paper's premise — a thin gateway shipping I/Q to a heavy cloud
// decoder — makes the backhaul the single point of failure. These
// primitives are deliberately small and policy-free: internal/gateway
// wires them into a reconnecting backhaul client (Gateway.RunResilient),
// internal/cloud wires them into the server's session reaper, and both
// report through internal/obs. See DESIGN.md §11 for the resilience model.
//
// Everything here obeys the repository's determinism rules: backoff jitter
// draws from repro/internal/rng (never math/rand), and the only wall-clock
// read in the package is the socket-deadline helper, which is explicitly
// exempted because deadlines are real-time I/O behavior, not simulation.
package resilience

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// Defaults for RetryPolicy fields left zero.
const (
	DefaultMaxAttempts = 5
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
	DefaultMultiplier  = 2.0
)

// RetryPolicy describes a reconnect loop: how many consecutive failures to
// tolerate and how to space the attempts. The zero value is usable and
// fills in the defaults above.
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive failed attempts before the
	// caller gives up. A successful attempt resets the budget (Backoff.Reset).
	MaxAttempts int
	// BaseDelay is the nominal delay before the first retry; each further
	// consecutive failure multiplies it by Multiplier up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (>= 1).
	Multiplier float64
	// Seed seeds the jitter stream. Two Backoffs built from the same policy
	// produce the same delay sequence, so retry timing replays with the
	// rest of a simulation.
	Seed uint64
}

// withDefaults returns the policy with zero fields replaced by defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	return p
}

// Backoff tracks consecutive failures against a RetryPolicy and hands out
// jittered exponential delays. Not safe for concurrent use; a reconnect
// loop owns one.
type Backoff struct {
	pol     RetryPolicy
	gen     *rng.Rand
	attempt int
}

// NewBackoff builds a Backoff over the policy (zero fields defaulted).
func NewBackoff(p RetryPolicy) *Backoff {
	p = p.withDefaults()
	return &Backoff{pol: p, gen: rng.New(p.Seed)}
}

// Next consumes one attempt and returns the delay to sleep before retrying.
// ok is false once MaxAttempts consecutive attempts have been consumed —
// the caller should give up and surface Err. The delay is the exponential
// step with "equal jitter": uniformly drawn from [step/2, step), which
// keeps retries spread out across a fleet of gateways while preserving the
// exponential envelope.
func (b *Backoff) Next() (delay time.Duration, ok bool) {
	if b.attempt >= b.pol.MaxAttempts {
		return 0, false
	}
	step := float64(b.pol.BaseDelay)
	for i := 0; i < b.attempt; i++ {
		step *= b.pol.Multiplier
		if step >= float64(b.pol.MaxDelay) {
			step = float64(b.pol.MaxDelay)
			break
		}
	}
	b.attempt++
	half := step / 2
	return time.Duration(half + b.gen.Float64()*half), true
}

// Reset clears the consecutive-failure count after a successful attempt,
// restoring the full retry budget. The jitter stream is not rewound.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempts returns how many consecutive attempts have been consumed.
func (b *Backoff) Attempts() int { return b.attempt }

// Err summarizes an exhausted retry budget around the last failure.
func (b *Backoff) Err(last error) error {
	return fmt.Errorf("resilience: retries exhausted after %d attempts: %w", b.attempt, last)
}
