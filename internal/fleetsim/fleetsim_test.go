package fleetsim

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/obs"
)

func clock() int64 { return time.Now().UnixNano() }

// TestSmallFleetRealDecode is the correctness soak: a small fleet decoding
// for real through a 2-shard plane. Every shipped segment must be decoded
// exactly once, no queue pressure, and the plane must wind down clean.
func TestSmallFleetRealDecode(t *testing.T) {
	cfg := Config{
		Gateways: 6,
		Captures: 1,
		Shards:   2,
		Workers:  2,
		Seed:     42,
		Clock:    clock,
	}
	wl, err := GenWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Packets() == 0 {
		t.Fatal("workload generated no traffic")
	}
	rep, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %+v", rep)
	if rep.GatewayErrors != 0 {
		t.Fatalf("%d gateways failed", rep.GatewayErrors)
	}
	if rep.SegmentsDecoded == 0 {
		t.Fatal("no segments decoded")
	}
	if rep.FramesReported == 0 {
		t.Fatal("no frames came back")
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicate decodes across shards", rep.Duplicates)
	}
	if rep.Rejected != 0 {
		t.Fatalf("%d busy rejects at this load", rep.Rejected)
	}
	if rep.FinalSessions != 0 {
		t.Fatalf("%d sessions still registered after the fleet exited", rep.FinalSessions)
	}
	if rep.PeakSessions == 0 {
		t.Fatal("session gauge never sampled above zero")
	}
	var sessions uint64
	for _, sh := range rep.PerShard {
		if sh.Admitted != sh.Completed {
			t.Fatalf("shard %d admitted %d but completed %d", sh.Shard, sh.Admitted, sh.Completed)
		}
		sessions += sh.Sessions
	}
	if sessions != uint64(cfg.Gateways) {
		t.Fatalf("shards served %d sessions, want %d", sessions, cfg.Gateways)
	}
}

// TestRunRollupMatchesPerShardRegistries is the rollup-correctness check:
// the fleet-wide aggregation frozen into the report must agree exactly
// with the per-shard farm snapshots the report itself carries — same
// counters, summed across the same registries, through a different path.
func TestRunRollupMatchesPerShardRegistries(t *testing.T) {
	j := obs.NewJournal(obs.DefaultJournalRing)
	h := obs.NewHealth()
	cfg := Config{
		Gateways: 6,
		Captures: 1,
		Shards:   3,
		Workers:  2,
		Seed:     42,
		Clock:    clock,
		Journal:  j,
		Health:   h,
	}
	wl, err := GenWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GatewayErrors != 0 {
		t.Fatalf("%d gateways failed", rep.GatewayErrors)
	}
	if rep.Rollup == nil {
		t.Fatal("report carries no rollup")
	}
	if want := cfg.Shards + 1; len(rep.Rollup.Targets) != want {
		t.Fatalf("rollup targets = %v, want %d (front + shards)", rep.Rollup.Targets, want)
	}
	if len(rep.Rollup.Errors) != 0 {
		t.Fatalf("rollup scrape errors: %v", rep.Rollup.Errors)
	}
	for _, c := range []struct {
		series string
		shard  func(ShardReport) uint64
	}{
		{"farm_jobs_admitted_total", func(s ShardReport) uint64 { return s.Admitted }},
		{"farm_jobs_completed_total", func(s ShardReport) uint64 { return s.Completed }},
		{"farm_jobs_rejected_total", func(s ShardReport) uint64 { return s.Rejected }},
	} {
		agg, ok := rep.Rollup.Counters[c.series]
		if !ok {
			t.Fatalf("rollup is missing %s", c.series)
		}
		var sum uint64
		for _, sh := range rep.PerShard {
			sum += c.shard(sh)
			name := fmt.Sprintf("shard%d", sh.Shard)
			if agg.PerTarget[name] != c.shard(sh) {
				t.Errorf("%s per-target %s = %d, want %d", c.series, name, agg.PerTarget[name], c.shard(sh))
			}
		}
		if agg.Total != sum {
			t.Errorf("%s rollup total = %d, want exact per-shard sum %d", c.series, agg.Total, sum)
		}
	}
	// The merged queue-wait histogram covers every dispatch across shards.
	qw, ok := rep.Rollup.Histograms["farm_queue_wait_samples"]
	if !ok {
		t.Fatal("rollup is missing farm_queue_wait_samples")
	}
	if qw.Count != rep.SegmentsDecoded {
		t.Errorf("merged queue-wait count = %d, want %d (one dispatch per decode)", qw.Count, rep.SegmentsDecoded)
	}

	// Shard lifecycle events: one coalesced attach burst, one detach burst.
	var attach, detach uint64
	for _, e := range j.Recent() {
		switch e.Name {
		case "fleet_shard_attach":
			attach += e.Count
		case "fleet_shard_detach":
			detach += e.Count
		}
	}
	if attach != uint64(cfg.Shards) || detach != uint64(cfg.Shards) {
		t.Errorf("journal saw %d attaches / %d detaches, want %d each", attach, detach, cfg.Shards)
	}
	// After Close every shard is detached: liveness must report it.
	if h.Liveness().Healthy {
		t.Error("liveness still healthy after the plane closed")
	}
}

// burnDecode is a synthetic decode with a fixed service time: it makes
// decode capacity — not host CPU or the detection pipeline — the plane's
// bottleneck, so throughput scaling is attributable to sharding.
func burnDecode(service time.Duration) func(context.Context, backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
	return func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		time.Sleep(service)
		return backhaul.FramesReport{SegmentStart: seg.Start}, cancel.Stats{}, nil
	}
}

// TestFleetThroughputScalesWithShards is the headline soak: the same
// seeded workload through a 1-shard and a 4-shard plane with a fixed
// synthetic decode service time, in the outage-recovery drain scenario
// (SpoolFirst) so arrival timing — single-host detection speed — does not
// pollute the capacity measurement. Decode-plane throughput must scale at
// least 3x, with zero duplicates and no admission-queue collapse.
func TestFleetThroughputScalesWithShards(t *testing.T) {
	base := Config{
		Gateways:       80,
		Captures:       1,
		CaptureSamples: 1 << 14,
		Workers:        2,
		Seed:           7,
		Decode:         burnDecode(200 * time.Millisecond),
		Clock:          clock,
		SpoolFirst:     true,
	}
	wl, err := GenWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) *Report {
		cfg := base
		cfg.Shards = shards
		rep, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("shards=%d: decoded=%d throughput=%.1f/s capacity=%.1f/s duration=%.0fms latency=%+v peak=%d",
			shards, rep.SegmentsDecoded, rep.Throughput, rep.Capacity, rep.DurationMillis, rep.Latency, rep.PeakSessions)
		for _, sh := range rep.PerShard {
			t.Logf("  shard %d: sessions=%d decoded=%d rejected=%d", sh.Shard, sh.Sessions, sh.Decoded, sh.Rejected)
		}
		if rep.GatewayErrors != 0 {
			t.Fatalf("shards=%d: %d gateways failed", shards, rep.GatewayErrors)
		}
		if rep.Duplicates != 0 {
			t.Fatalf("shards=%d: %d duplicate decodes", shards, rep.Duplicates)
		}
		if rep.Rejected != 0 {
			t.Fatalf("shards=%d: admission queue collapsed (%d rejects)", shards, rep.Rejected)
		}
		for _, sh := range rep.PerShard {
			if sh.Admitted != sh.Completed {
				t.Fatalf("shards=%d: shard %d admitted %d completed %d", shards, sh.Shard, sh.Admitted, sh.Completed)
			}
		}
		return rep
	}
	one := run(1)
	four := run(4)
	if one.SegmentsDecoded != four.SegmentsDecoded {
		t.Fatalf("same workload decoded %d segments on 1 shard but %d on 4", one.SegmentsDecoded, four.SegmentsDecoded)
	}
	ratio := four.Capacity / one.Capacity
	if ratio < 3 {
		t.Fatalf("decode capacity scaled %.2fx from 1 to 4 shards, want >= 3x (1: %.1f/s, 4: %.1f/s)",
			ratio, one.Capacity, four.Capacity)
	}
}
