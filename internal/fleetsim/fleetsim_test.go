package fleetsim

import (
	"context"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cancel"
)

func clock() int64 { return time.Now().UnixNano() }

// TestSmallFleetRealDecode is the correctness soak: a small fleet decoding
// for real through a 2-shard plane. Every shipped segment must be decoded
// exactly once, no queue pressure, and the plane must wind down clean.
func TestSmallFleetRealDecode(t *testing.T) {
	cfg := Config{
		Gateways: 6,
		Captures: 1,
		Shards:   2,
		Workers:  2,
		Seed:     42,
		Clock:    clock,
	}
	wl, err := GenWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Packets() == 0 {
		t.Fatal("workload generated no traffic")
	}
	rep, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %+v", rep)
	if rep.GatewayErrors != 0 {
		t.Fatalf("%d gateways failed", rep.GatewayErrors)
	}
	if rep.SegmentsDecoded == 0 {
		t.Fatal("no segments decoded")
	}
	if rep.FramesReported == 0 {
		t.Fatal("no frames came back")
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicate decodes across shards", rep.Duplicates)
	}
	if rep.Rejected != 0 {
		t.Fatalf("%d busy rejects at this load", rep.Rejected)
	}
	if rep.FinalSessions != 0 {
		t.Fatalf("%d sessions still registered after the fleet exited", rep.FinalSessions)
	}
	if rep.PeakSessions == 0 {
		t.Fatal("session gauge never sampled above zero")
	}
	var sessions uint64
	for _, sh := range rep.PerShard {
		if sh.Admitted != sh.Completed {
			t.Fatalf("shard %d admitted %d but completed %d", sh.Shard, sh.Admitted, sh.Completed)
		}
		sessions += sh.Sessions
	}
	if sessions != uint64(cfg.Gateways) {
		t.Fatalf("shards served %d sessions, want %d", sessions, cfg.Gateways)
	}
}

// burnDecode is a synthetic decode with a fixed service time: it makes
// decode capacity — not host CPU or the detection pipeline — the plane's
// bottleneck, so throughput scaling is attributable to sharding.
func burnDecode(service time.Duration) func(context.Context, backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
	return func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		time.Sleep(service)
		return backhaul.FramesReport{SegmentStart: seg.Start}, cancel.Stats{}, nil
	}
}

// TestFleetThroughputScalesWithShards is the headline soak: the same
// seeded workload through a 1-shard and a 4-shard plane with a fixed
// synthetic decode service time, in the outage-recovery drain scenario
// (SpoolFirst) so arrival timing — single-host detection speed — does not
// pollute the capacity measurement. Decode-plane throughput must scale at
// least 3x, with zero duplicates and no admission-queue collapse.
func TestFleetThroughputScalesWithShards(t *testing.T) {
	base := Config{
		Gateways:       80,
		Captures:       1,
		CaptureSamples: 1 << 14,
		Workers:        2,
		Seed:           7,
		Decode:         burnDecode(200 * time.Millisecond),
		Clock:          clock,
		SpoolFirst:     true,
	}
	wl, err := GenWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) *Report {
		cfg := base
		cfg.Shards = shards
		rep, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("shards=%d: decoded=%d throughput=%.1f/s capacity=%.1f/s duration=%.0fms latency=%+v peak=%d",
			shards, rep.SegmentsDecoded, rep.Throughput, rep.Capacity, rep.DurationMillis, rep.Latency, rep.PeakSessions)
		for _, sh := range rep.PerShard {
			t.Logf("  shard %d: sessions=%d decoded=%d rejected=%d", sh.Shard, sh.Sessions, sh.Decoded, sh.Rejected)
		}
		if rep.GatewayErrors != 0 {
			t.Fatalf("shards=%d: %d gateways failed", shards, rep.GatewayErrors)
		}
		if rep.Duplicates != 0 {
			t.Fatalf("shards=%d: %d duplicate decodes", shards, rep.Duplicates)
		}
		if rep.Rejected != 0 {
			t.Fatalf("shards=%d: admission queue collapsed (%d rejects)", shards, rep.Rejected)
		}
		for _, sh := range rep.PerShard {
			if sh.Admitted != sh.Completed {
				t.Fatalf("shards=%d: shard %d admitted %d completed %d", shards, sh.Shard, sh.Admitted, sh.Completed)
			}
		}
		return rep
	}
	one := run(1)
	four := run(4)
	if one.SegmentsDecoded != four.SegmentsDecoded {
		t.Fatalf("same workload decoded %d segments on 1 shard but %d on 4", one.SegmentsDecoded, four.SegmentsDecoded)
	}
	ratio := four.Capacity / one.Capacity
	if ratio < 3 {
		t.Fatalf("decode capacity scaled %.2fx from 1 to 4 shards, want >= 3x (1: %.1f/s, 4: %.1f/s)",
			ratio, one.Capacity, four.Capacity)
	}
}
