// Package fleetsim is the in-process fleet simulator: it drives hundreds
// of real gateway.RunResilient clients — full detection pipeline, real
// backhaul wire protocol, real reconnect machinery — against a sharded
// decode plane (internal/fleet) over loopback TCP, and reduces what
// happened into one structured Report.
//
// The simulator exists to answer capacity questions the single-connection
// tests cannot: does decode throughput scale with the shard count, do the
// admission queues hold under a fleet's worth of concurrent sessions, and
// does any segment ever reach two shards. The workload is generated once
// (GenWorkload, deterministic from a seed, built on internal/sim's
// duty-cycled traffic model) and reused across runs, so a 1-shard and a
// 4-shard run decode byte-identical captures and their reports are
// directly comparable.
//
// Determinism: the library never reads the wall clock itself — Config.Clock
// injects it (commands and tests pass time.Now().UnixNano). Everything
// else — traffic, routing, retry jitter — replays from Config.Seed.
package fleetsim

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/frontend"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Config parameterizes one fleet simulation.
type Config struct {
	// Gateways is the fleet size (default 8).
	Gateways int
	// Captures is how many captures each gateway processes (default 1).
	Captures int
	// CaptureSamples is each capture's length in samples (default 1<<15).
	CaptureSamples int
	// MeanGapMs is the mean idle gap between a technology's transmissions
	// within one capture, in milliseconds (default 5). Smaller = denser
	// traffic = more segments per capture.
	MeanGapMs float64
	// Shards, Workers, QueueDepth size the decode plane (fleet.Config
	// semantics; Workers and QueueDepth are per shard). QueueDepth
	// defaults high (256) because busy-rejected segments are retired, not
	// retried — a capacity study wants zero rejects unless it is
	// explicitly probing collapse.
	Shards, Workers, QueueDepth int
	// Window pins every gateway's shipping window; 0 lets them auto-size
	// from the hello ack's capacity hint.
	Window int
	// Seed drives workload generation and retry jitter (default 1).
	Seed uint64
	// Techs is the technology set (default XBee + Z-Wave — short
	// airtimes, so captures stay small).
	Techs []phy.Technology
	// SNRMin/SNRMax bound the per-packet SNR draw (defaults 12..18 dB).
	SNRMin, SNRMax float64
	// Decode overrides the shards' decode function (scaling studies
	// inject a synthetic service time). Nil decodes for real.
	Decode farm.DecodeFunc
	// SpoolFirst runs the outage-recovery drain scenario: the plane does
	// not accept sessions until every gateway has detected its whole
	// workload into the resilient spool, then the fleet reconnects at
	// once and the plane absorbs the backlog. This separates the fleet's
	// (CPU-bound) detection phase from the decode drain, so Throughput
	// measures plane capacity rather than single-host detection speed —
	// it is the mode the shard-scaling soak uses.
	SpoolFirst bool
	// Clock supplies monotonic-enough wall time in nanoseconds for
	// latency and throughput accounting. Required (pass
	// func() int64 { return time.Now().UnixNano() }).
	Clock func() int64
	// Logf receives plane diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Journal receives the plane's shard lifecycle events (fleet.Config
	// semantics). Nil disables event recording.
	Journal *obs.Journal
	// Health receives the plane's shard liveness and farm headroom checks
	// (fleet.Config semantics). Nil skips registration.
	Health *obs.Health
	// OnPlane observes the decode plane's scrape targets as soon as the
	// plane is up, before any session is accepted — commands feed them to
	// a live obs.Fleet so -obs-addr serves /fleet/metrics during the run.
	// Nil skips the callback.
	OnPlane func(targets []obs.Target)
	// Traces, when set, traces the whole run end to end: every gateway
	// shares one site="gateway" tracer, the decode plane gets a
	// site="cloud" tracer, and both sink their finished spans into this
	// store, where the wire-propagated trace IDs stitch each segment's
	// gateway and cloud spans into one tree. Report.Trace summarizes the
	// assembled traces. Nil runs untraced.
	Traces *obs.TraceStore
}

// withDefaults validates the config and fills zero fields in, returning
// the completed copy (value semantics keep Config free of lock concerns).
func withDefaults(c Config) (Config, error) {
	if c.Clock == nil {
		return c, fmt.Errorf("fleetsim: Config.Clock is required (inject time.Now().UnixNano)")
	}
	if c.Gateways <= 0 {
		c.Gateways = 8
	}
	if c.Captures <= 0 {
		c.Captures = 1
	}
	if c.CaptureSamples <= 0 {
		c.CaptureSamples = 1 << 15
	}
	if c.MeanGapMs <= 0 {
		c.MeanGapMs = 5
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Techs) == 0 {
		c.Techs = defaultTechs()
	}
	if c.SNRMin == 0 && c.SNRMax == 0 {
		c.SNRMin, c.SNRMax = 12, 18
	}
	return c, nil
}

// GatewayLoad is one gateway's share of the workload.
type GatewayLoad struct {
	ID       string
	Epoch    uint64
	Captures [][]complex128
	Packets  int // ground-truth transmissions across the captures
}

// Workload is a pre-rendered fleet workload: generate once, run many
// times. Runs over the same Workload decode byte-identical captures.
type Workload struct {
	Seed           uint64
	SampleRate     float64
	CaptureSamples int
	Gateways       []GatewayLoad
}

// Packets returns the ground-truth transmission count across the fleet.
func (w *Workload) Packets() int {
	n := 0
	for i := range w.Gateways {
		n += w.Gateways[i].Packets
	}
	return n
}

// GenWorkload renders the fleet's captures deterministically from
// cfg.Seed: every gateway gets its own rng lane, so the workload is
// reproducible and per-gateway traffic is independent.
func GenWorkload(cfg Config) (*Workload, error) {
	cfg, err := withDefaults(cfg)
	if err != nil {
		return nil, err
	}
	const fs = 1e6
	wl := &Workload{Seed: cfg.Seed, SampleRate: fs, CaptureSamples: cfg.CaptureSamples}
	root := rng.New(cfg.Seed)
	for i := 0; i < cfg.Gateways; i++ {
		gen := root.Split(uint64(i) + 1)
		load := GatewayLoad{
			ID:    fmt.Sprintf("simgw-%04d", i),
			Epoch: uint64(i) + 1,
		}
		for j := 0; j < cfg.Captures; j++ {
			sc, err := sim.GenTraffic(sim.TrafficConfig{
				Techs:      cfg.Techs,
				SampleRate: fs,
				Duration:   cfg.CaptureSamples,
				MeanGap:    cfg.MeanGapMs / 1e3,
				SNRMin:     cfg.SNRMin,
				SNRMax:     cfg.SNRMax,
				PayloadMin: 6,
				PayloadMax: 14,
			}, gen.Split(uint64(j)+1))
			if err != nil {
				return nil, err
			}
			load.Captures = append(load.Captures, sc.Capture)
			load.Packets += len(sc.Packets)
		}
		wl.Gateways = append(wl.Gateways, load)
	}
	return wl, nil
}

func defaultTechs() []phy.Technology {
	return []phy.Technology{xbee.Default(), zwave.Default()}
}

// Quantiles summarizes a latency distribution, in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	Max float64 `json:"max_ms"`
}

// ShardReport is one shard's slice of a run.
type ShardReport struct {
	Shard      int     `json:"shard"`
	Sessions   uint64  `json:"sessions"`
	Decoded    uint64  `json:"decoded"`    // decode invocations on this shard
	Admitted   uint64  `json:"admitted"`   // segments the admission queue accepted
	Completed  uint64  `json:"completed"`  // segments fully decoded and replied
	Rejected   uint64  `json:"rejected"`   // busy rejects (queue full)
	Throughput float64 `json:"throughput"` // decoded segments per second of this shard's busy window
}

// Report is the structured outcome of one fleet run.
type Report struct {
	Seed     uint64 `json:"seed"`
	Gateways int    `json:"gateways"`
	Captures int    `json:"captures_per_gateway"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers_per_shard"`

	DurationMillis float64 `json:"duration_ms"` // whole run, first dial to last gateway exit

	PacketsOffered  int    `json:"packets_offered"`  // ground-truth transmissions
	SegmentsDecoded uint64 `json:"segments_decoded"` // decode invocations across shards
	FramesReported  uint64 `json:"frames_reported"`  // frames delivered back to gateways
	Duplicates      uint64 `json:"duplicates"`       // identical segments decoded more than once
	Rejected        uint64 `json:"rejected"`         // busy rejects across shards
	GatewayErrors   int    `json:"gateway_errors"`   // RunResilient calls that returned an error

	// Throughput is decode-plane throughput: segments decoded per second
	// of the plane's busy window (first decode start to last decode end).
	// The busy window excludes the fleet's detection warm-up, so the
	// number isolates what sharding actually changes.
	Throughput float64 `json:"throughput_segs_per_sec"`
	// Capacity is the plane's aggregate decode capacity: the sum of the
	// per-shard throughputs, each measured over that shard's own busy
	// window. Unlike Throughput it is not diluted by cross-shard load
	// imbalance or straggling arrivals, so it is the number that should
	// scale linearly with the shard count.
	Capacity float64 `json:"capacity_segs_per_sec"`

	// PeakSessions is the highest cloud_sessions_active_count sampled
	// during the run; FinalSessions is the gauge after every gateway
	// disconnected (should be 0).
	PeakSessions  int64 `json:"peak_sessions"`
	FinalSessions int64 `json:"final_sessions"`

	Latency Quantiles `json:"latency"` // capture accepted -> report received

	PerShard []ShardReport `json:"per_shard"`

	// Rollup is the fleet-wide metrics aggregation over the plane registry
	// and every shard farm's private registry, collected after the drain:
	// the same view /fleet/metrics serves live, frozen into the report.
	Rollup *obs.FleetSnapshot `json:"rollup,omitempty"`

	// Trace summarizes the run's assembled trace trees when Config.Traces
	// was set.
	Trace *TraceStats `json:"trace,omitempty"`
}

// TraceStats reduces the run's TraceStore to the numbers the fleet soak
// gates on: every retained trace should be fully stitched (zero orphans)
// and at least one should span both processes.
type TraceStats struct {
	Traces   int `json:"traces"`   // retained traces
	Spans    int `json:"spans"`    // spans across those traces
	Orphans  int `json:"orphans"`  // spans whose parent never arrived
	Replayed int `json:"replayed"` // traces carrying a replay/wal_replay stage
	Stitched int `json:"stitched"` // traces with spans from both sites
}

// decodeProbe wraps every shard's decode function: it counts invocations
// per shard, fingerprints each segment to catch the same segment being
// decoded twice (on any shard — the shared-nothing invariant), and records
// the plane's busy window.
type decodeProbe struct {
	clock func() int64

	mu         sync.Mutex
	seen       map[segKey]int
	perShard   []uint64
	duplicates uint64
	firstStart int64
	lastEnd    int64
	// Per-shard busy windows: a shard's capacity is its decode count over
	// its own first-start..last-end span, so one shard's stragglers do not
	// dilute another's measured rate.
	shardFirst []int64
	shardLast  []int64
}

// segKey fingerprints one shipped segment. Start and length come straight
// from the segment; the sample hash disambiguates different gateways'
// segments that happen to share a timeline position.
type segKey struct {
	start   int64
	samples int
	hash    uint64
}

func keyOf(seg backhaul.Segment) segKey {
	// FNV-1a over the first 64 samples' real parts, quantized; enough to
	// tell any two distinct noise floors apart.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	n := len(seg.Samples)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		v := uint64(int64(real(seg.Samples[i]) * 1e9))
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= prime64
		}
	}
	return segKey{start: seg.Start, samples: len(seg.Samples), hash: h}
}

func (p *decodeProbe) wrap(shard int, next farm.DecodeFunc) farm.DecodeFunc {
	return func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		start := p.clock()
		rep, st, err := next(ctx, seg)
		end := p.clock()
		key := keyOf(seg)
		p.mu.Lock()
		p.perShard[shard]++
		p.seen[key]++
		if p.seen[key] > 1 {
			p.duplicates++
		}
		if p.firstStart == 0 || start < p.firstStart {
			p.firstStart = start
		}
		if end > p.lastEnd {
			p.lastEnd = end
		}
		if p.shardFirst[shard] == 0 || start < p.shardFirst[shard] {
			p.shardFirst[shard] = start
		}
		if end > p.shardLast[shard] {
			p.shardLast[shard] = end
		}
		p.mu.Unlock()
		return rep, st, err
	}
}

// Run executes one fleet simulation over a pre-generated workload. The
// returned error covers harness failures (no listener, bad config);
// per-gateway session errors are reported, not fatal.
func Run(cfg Config, wl *Workload) (*Report, error) {
	cfg, err := withDefaults(cfg)
	if err != nil {
		return nil, err
	}
	if len(wl.Gateways) == 0 {
		return nil, fmt.Errorf("fleetsim: empty workload")
	}

	probe := &decodeProbe{
		clock:      cfg.Clock,
		seen:       make(map[segKey]int),
		perShard:   make([]uint64, cfg.Shards),
		shardFirst: make([]int64, cfg.Shards),
		shardLast:  make([]int64, cfg.Shards),
	}
	// One tracer per process role: the whole fleet shares the gateway-side
	// tracer (spans are site-salted per gateway ID at mint time, so sharing
	// the tracer only shares the ring) and the plane gets its own. Both
	// sink into the shared store, which is what stitches the two sides.
	var gwTracer, cloudTracer *obs.Tracer
	if cfg.Traces != nil {
		gwTracer = obs.NewTracer(0)
		gwTracer.SetClock(cfg.Clock)
		gwTracer.SetSite("gateway")
		gwTracer.SetSink(cfg.Traces.Ingest)
		cloudTracer = obs.NewTracer(0)
		cloudTracer.SetClock(cfg.Clock)
		cloudTracer.SetSite("cloud")
		cloudTracer.SetSink(cfg.Traces.Ingest)
	}
	front, err := fleet.New(fleet.Config{
		Shards:     cfg.Shards,
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Techs:      cfg.Techs,
		Decode:     cfg.Decode,
		WrapDecode: probe.wrap,
		Logf:       cfg.Logf,
		Journal:    cfg.Journal,
		Health:     cfg.Health,
		Tracer:     cloudTracer,
	})
	if err != nil {
		return nil, err
	}
	if cfg.OnPlane != nil {
		cfg.OnPlane(front.Targets())
	}
	// The listener binds immediately so gateways can dial (their
	// connections queue in the TCP accept backlog), but in SpoolFirst mode
	// Serve — and with it every session — starts only once the whole
	// fleet has spooled its workload.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		front.Close()
		return nil, err
	}
	srv := front.NewServer()
	addr := ln.Addr().String()
	activeGauge := front.Registry().Gauge("cloud_sessions_active_count")

	gws := make([]*gateway.Gateway, len(wl.Gateways))
	for gi := range wl.Gateways {
		g, err := gateway.New(gateway.Config{
			ID:       wl.Gateways[gi].ID,
			Techs:    cfg.Techs,
			Frontend: frontend.Ideal(wl.SampleRate),
			Window:   cfg.Window,
			Tracer:   gwTracer,
		})
		if err != nil {
			_ = ln.Close()
			front.Close()
			return nil, err
		}
		gws[gi] = g
	}

	var serveWG sync.WaitGroup
	serve := func() {
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			// A closed listener returns nil; anything else surfaces
			// through the plane diagnostics.
			if err := srv.Serve(ln); err != nil && cfg.Logf != nil {
				cfg.Logf("fleetsim: serve: %v", err)
			}
		}()
	}
	if !cfg.SpoolFirst {
		serve()
	} else {
		// Gate: start accepting once every gateway has pushed its whole
		// capture list through detection AND the fleet-wide shipped count
		// has stopped moving (the end-of-stream Flush still produces
		// segments after the last capture returns), emulating the cloud
		// coming back after an outage to a fully spooled fleet.
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			total := len(wl.Gateways) * cfg.Captures
			lastShipped, stable := -1, 0
			for stable < 20 {
				done, shipped := 0, 0
				for _, g := range gws {
					st := g.Stats()
					done += st.CapturesProcessed
					shipped += st.SegmentsShipped
				}
				if done >= total && shipped == lastShipped {
					stable++
				} else {
					stable = 0
				}
				lastShipped = shipped
				time.Sleep(10 * time.Millisecond)
			}
			serve()
		}()
	}

	// Session-gauge sampler: cheap poll loop, joined before reporting.
	var peak int64
	samplerQuit := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-samplerQuit:
				return
			default:
			}
			if v := activeGauge.Value(); v > peak {
				peak = v
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	start := cfg.Clock()
	var (
		wg        sync.WaitGroup
		collectMu sync.Mutex
		latencies []int64
		frames    uint64
		gwErrors  int
	)
	for gi := range wl.Gateways {
		load := &wl.Gateways[gi]
		g := gws[gi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat, nFrames, err := runOneGateway(cfg, wl, g, load, addr)
			collectMu.Lock()
			latencies = append(latencies, lat...)
			frames += nFrames
			if err != nil {
				gwErrors++
			}
			collectMu.Unlock()
		}()
	}
	wg.Wait()
	end := cfg.Clock()
	close(samplerQuit)
	samplerWG.Wait()
	finalSessions := activeGauge.Value()

	// Every gateway has its replies; stop accepting, then drain the farms.
	if err := srv.Close(); err != nil && cfg.Logf != nil {
		cfg.Logf("fleetsim: server close: %v", err)
	}
	serveWG.Wait()
	stats := front.Stats()
	// Freeze the fleet rollup while the registries still hold the run's
	// final numbers (Stats above refreshed the re-exported gauges).
	rollup := obs.NewFleet(front.Targets()...).Collect()
	front.Close()

	rep := &Report{
		Seed:           wl.Seed,
		Gateways:       len(wl.Gateways),
		Captures:       cfg.Captures,
		Shards:         cfg.Shards,
		Workers:        cfg.Workers,
		DurationMillis: float64(end-start) / 1e6,
		PacketsOffered: wl.Packets(),
		FramesReported: frames,
		GatewayErrors:  gwErrors,
		PeakSessions:   peak,
		FinalSessions:  finalSessions,
		Latency:        quantiles(latencies),
		Rollup:         &rollup,
	}
	probe.mu.Lock()
	rep.Duplicates = probe.duplicates
	for _, n := range probe.perShard {
		rep.SegmentsDecoded += n
	}
	window := float64(probe.lastEnd-probe.firstStart) / 1e9
	shardWindows := make([]float64, cfg.Shards)
	for i := range shardWindows {
		shardWindows[i] = float64(probe.shardLast[i]-probe.shardFirst[i]) / 1e9
	}
	probe.mu.Unlock()
	if window > 0 {
		rep.Throughput = float64(rep.SegmentsDecoded) / window
	}
	for i, st := range stats {
		sr := ShardReport{
			Shard:     st.Shard,
			Sessions:  st.Sessions,
			Decoded:   probe.perShard[i],
			Admitted:  st.Farm.Admitted,
			Completed: st.Farm.Completed,
			Rejected:  st.Farm.Rejected,
		}
		if shardWindows[i] > 0 {
			sr.Throughput = float64(sr.Decoded) / shardWindows[i]
		}
		rep.Capacity += sr.Throughput
		rep.Rejected += st.Farm.Rejected
		rep.PerShard = append(rep.PerShard, sr)
	}
	if cfg.Traces != nil {
		rep.Trace = traceStats(cfg.Traces)
	}
	return rep, nil
}

// traceStats reduces the store's assembled trees to the report summary.
// A trace is stitched when spans from both the gateway-side tracer and
// the plane's tracer landed on the same wire-propagated trace ID.
func traceStats(store *obs.TraceStore) *TraceStats {
	st := &TraceStats{}
	for _, tree := range store.Trees() {
		st.Traces++
		st.Spans += len(tree.Spans)
		st.Orphans += tree.Orphans
		if tree.Replayed {
			st.Replayed++
		}
		var gw, cl bool
		for _, sp := range tree.Spans {
			switch {
			case strings.HasPrefix(sp.Kind, "gateway"):
				gw = true
			case strings.HasPrefix(sp.Kind, "cloud"):
				cl = true
			}
		}
		if gw && cl {
			st.Stitched++
		}
	}
	return st
}

// runOneGateway drives one real resilient gateway session over loopback
// TCP and returns its per-capture report latencies (nanoseconds) and the
// frame count it received.
func runOneGateway(cfg Config, wl *Workload, g *gateway.Gateway, load *GatewayLoad, addr string) ([]int64, uint64, error) {
	// acceptNs[j] is when the pipeline accepted capture j; reports map
	// back through the gateway's absolute sample clock.
	acceptNs := make([]int64, len(load.Captures))
	var acceptMu sync.Mutex
	captures := make(chan []complex128)
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		defer close(captures)
		for j, c := range load.Captures {
			captures <- c
			now := cfg.Clock()
			acceptMu.Lock()
			acceptNs[j] = now
			acceptMu.Unlock()
		}
	}()

	var (
		repMu     sync.Mutex
		latencies []int64
		frames    uint64
	)
	err := g.RunResilient(gateway.Resilient{
		Dial: func() (io.ReadWriteCloser, error) {
			return net.Dial("tcp", addr)
		},
		Retry: resilience.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			Seed:        load.Epoch,
		},
		SpoolCapacity: 2 * len(load.Captures) * 8,
		Epoch:         load.Epoch,
	}, captures, func(r backhaul.FramesReport) {
		now := cfg.Clock()
		idx := int(r.SegmentStart) / wl.CaptureSamples
		if idx < 0 {
			idx = 0
		}
		if idx >= len(acceptNs) {
			idx = len(acceptNs) - 1
		}
		acceptMu.Lock()
		t0 := acceptNs[idx]
		acceptMu.Unlock()
		repMu.Lock()
		if t0 > 0 && now > t0 {
			latencies = append(latencies, now-t0)
		}
		frames += uint64(len(r.Frames))
		repMu.Unlock()
	})
	feedWG.Wait()
	return latencies, frames, err
}

// quantiles reduces nanosecond latencies to the report's summary.
func quantiles(ns []int64) Quantiles {
	if len(ns) == 0 {
		return Quantiles{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(ns)-1))
		return float64(ns[i]) / 1e6
	}
	return Quantiles{P50: at(0.50), P95: at(0.95), Max: float64(ns[len(ns)-1]) / 1e6}
}
