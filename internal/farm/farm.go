// Package farm implements the cloud's concurrent decode farm: a bounded
// job queue with admission control in front of a pool of collision-decode
// workers. It is the piece that lets one cloud process absorb "several such
// gateways" worth of shipped I/Q (paper Sec. 4) — instead of one blocking
// decode per connection, every session feeds the shared queue and a fixed
// worker pool drains it, so a slow collision decode on one session no
// longer stalls the others.
//
// Design points (DESIGN.md §9):
//
//   - Admission control: the queue depth is a hard bound. TrySubmit rejects
//     with ErrBusy when the queue is full (the session answers the gateway
//     with an explicit MsgBusy instead of growing memory without bound);
//     Submit blocks, which turns the bound into backpressure for protocol-v1
//     sessions that have no busy vocabulary.
//   - Deadlines/cancellation: every job carries a context.Context. A job
//     whose context is already done when a worker picks it up is skipped
//     (counted as DeadlineExceeded) — dead sessions do not waste decode
//     cycles. The decode itself is not preemptible.
//   - Out-of-order completion: workers finish in whatever order decodes
//     take; the per-session Sequencer (sequencer.go) restores submission
//     order on the reply path.
//   - Graceful drain: Close stops intake, lets the workers finish every
//     admitted job (each job's done callback runs exactly once), and only
//     then returns. No admitted segment is ever dropped.
//   - Sample-clock accounting: queue wait is measured in samples admitted
//     while the job sat in the queue, not wall-clock time, so the numbers
//     are meaningful under the repository's determinism rules and scale
//     with offered load rather than host speed.
package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/obs"
)

// DecodeFunc decodes one shipped segment. Implementations must be safe for
// concurrent use by multiple workers.
type DecodeFunc func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error)

// Config sizes a Farm.
type Config struct {
	// Workers is the number of decode goroutines (default 4).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-dispatched jobs
	// (default 64). Beyond it, TrySubmit rejects and Submit blocks.
	QueueDepth int
	// Decode runs one segment. Required.
	Decode DecodeFunc
	// Obs receives the farm's metrics (farm_jobs_* counters/gauges and the
	// farm_queue_wait_samples histogram). Nil creates a private registry so
	// Snapshot keeps working standalone.
	Obs *obs.Registry
	// Clock, when set, feeds a farm_decode_duration_nanos histogram with
	// the wall time each decode takes. The farm never reads the wall clock
	// itself (determinism rules) — commands inject time.Now().UnixNano.
	// Nil means decode durations are simply not recorded; the sample-clock
	// queue-wait accounting is unaffected either way.
	Clock func() int64
}

// Sentinel errors returned by the admission path.
var (
	// ErrBusy means the queue is full; the caller should reject the
	// segment explicitly (MsgBusy) rather than wait.
	ErrBusy = errors.New("farm: queue full")
	// ErrClosed means the farm is draining or closed; no new work is
	// admitted.
	ErrClosed = errors.New("farm: closed")
)

// Result is the outcome of one job, delivered to its done callback.
type Result struct {
	Report backhaul.FramesReport
	Stats  cancel.Stats
	// Err is non-nil when the job was skipped (context cancelled or
	// deadline exceeded before a worker reached it) or the decode failed.
	Err error
}

// job is one admitted segment waiting for a worker.
type job struct {
	ctx        context.Context
	seg        backhaul.Segment
	done       func(Result)
	admitClock int64 // farm sample clock at admission
}

// waitWindow is how many recent queue waits the quantile histogram keeps
// (the window of the farm_queue_wait_samples metric).
const waitWindow = obs.DefaultHistogramWindow

// Farm is the shared decode farm. Create with New, stop with Close.
type Farm struct {
	cfg Config

	mu    sync.Mutex
	work  *sync.Cond // signaled when a job is queued or the farm closes
	space *sync.Cond // signaled when a queue slot frees up
	queue []job
	head  int
	wg    sync.WaitGroup

	closed bool
	clock  int64 // total samples admitted so far (the sample clock)

	// Metrics live on the registry (Config.Obs or a private one) so the
	// same numbers feed Snapshot, /metrics, and the shutdown dump.
	admitted  *obs.Counter
	completed *obs.Counter
	rejected  *obs.Counter
	deadline  *obs.Counter
	queuedG   *obs.Gauge
	inFlightG *obs.Gauge
	waitH     *obs.Histogram  // recent queue waits, in samples
	decodeT   *obs.StageTimer // per-decode wall time, nil without Config.Clock
}

// Stats is a point-in-time snapshot of the farm, exposed through
// cloud.Service.Totals and the galiot-cloud shutdown log.
type Stats struct {
	Workers    int // configured worker count
	QueueDepth int // configured admission bound

	Queued   int // jobs admitted, not yet dispatched
	InFlight int // jobs currently decoding

	Admitted         uint64 // jobs accepted by admission control
	Completed        uint64 // done callbacks run (decoded or skipped)
	Rejected         uint64 // TrySubmit calls answered ErrBusy
	DeadlineExceeded uint64 // jobs skipped because their context was done

	// Queue-wait quantiles over the last waitWindow dispatches, measured
	// on the sample clock: how many samples of newer work were admitted
	// while the job waited. 0 when nothing has been dispatched yet.
	P50QueueWait int64
	P99QueueWait int64
}

// New builds the farm and starts its workers. cfg.Decode must be set.
func New(cfg Config) *Farm {
	if cfg.Decode == nil {
		panic("farm: Config.Decode is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f := &Farm{
		cfg:       cfg,
		admitted:  reg.Counter("farm_jobs_admitted_total"),
		completed: reg.Counter("farm_jobs_completed_total"),
		rejected:  reg.Counter("farm_jobs_rejected_total"),
		deadline:  reg.Counter("farm_jobs_deadline_total"),
		queuedG:   reg.Gauge("farm_jobs_queued_count"),
		inFlightG: reg.Gauge("farm_jobs_inflight_count"),
		waitH:     reg.Histogram("farm_queue_wait_samples", waitWindow),
		decodeT:   obs.NewStageTimer(reg, "farm_decode_duration_nanos", 0, cfg.Clock),
	}
	f.work = sync.NewCond(&f.mu)
	f.space = sync.NewCond(&f.mu)
	for i := 0; i < cfg.Workers; i++ {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.run()
		}()
	}
	return f
}

// TrySubmit admits seg without blocking. done runs exactly once, from a
// worker goroutine, unless an error is returned (ErrBusy when the queue is
// full, ErrClosed after Close). done must be safe to call from another
// goroutine and should hand off quickly.
func (f *Farm) TrySubmit(ctx context.Context, seg backhaul.Segment, done func(Result)) error {
	return f.admit(ctx, seg, done, false)
}

// Submit admits seg, blocking while the queue is full. It returns ErrClosed
// if the farm closes before a slot frees up. Blocking admission is the
// backpressure path for protocol-v1 sessions, which cannot be told "busy".
func (f *Farm) Submit(ctx context.Context, seg backhaul.Segment, done func(Result)) error {
	return f.admit(ctx, seg, done, true)
}

func (f *Farm) admit(ctx context.Context, seg backhaul.Segment, done func(Result), wait bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return ErrClosed
		}
		if f.queued() < f.cfg.QueueDepth {
			break
		}
		if !wait {
			f.rejected.Inc()
			return ErrBusy
		}
		f.space.Wait()
	}
	f.queue = append(f.queue, job{ctx: ctx, seg: seg, done: done, admitClock: f.clock})
	f.clock += int64(len(seg.Samples))
	f.admitted.Inc()
	f.queuedG.Add(1)
	f.work.Signal()
	return nil
}

// queued returns the waiting-job count; callers hold f.mu.
func (f *Farm) queued() int { return len(f.queue) - f.head }

// pop removes the oldest queued job; callers hold f.mu and have checked
// queued() > 0.
func (f *Farm) pop() job {
	j := f.queue[f.head]
	f.queue[f.head] = job{} // release references early
	f.head++
	if f.head == len(f.queue) {
		f.queue = f.queue[:0]
		f.head = 0
	}
	return j
}

// run is one worker loop: pop, decode (or skip a dead job), deliver.
func (f *Farm) run() {
	for {
		f.mu.Lock()
		for f.queued() == 0 && !f.closed {
			f.work.Wait()
		}
		if f.queued() == 0 {
			// closed and drained
			f.mu.Unlock()
			return
		}
		j := f.pop()
		wait := f.clock - j.admitClock
		f.mu.Unlock()
		f.queuedG.Add(-1)
		f.inFlightG.Add(1)
		// The queue-wait observation carries the segment's trace ID as an
		// exemplar: a p99 spike on farm_queue_wait_samples links straight to
		// the trace tree of the segment that set the high watermark.
		if sp := obs.SpanFromContext(j.ctx); sp != nil {
			f.waitH.ObserveExemplar(wait, sp.TraceID())
			sp.Stage("farm_queue", wait, float64(len(j.seg.Samples)))
		} else {
			f.waitH.Observe(wait)
		}
		f.space.Signal()

		var res Result
		if err := j.ctx.Err(); err != nil {
			res.Err = err
			f.deadline.Inc()
		} else {
			t := f.decodeT.Start()
			res.Report, res.Stats, res.Err = f.cfg.Decode(j.ctx, j.seg)
			f.decodeT.Stop(t)
		}
		f.inFlightG.Add(-1)
		f.completed.Inc()
		j.done(res)
	}
}

// RegisterHealth registers the farm's saturation check on h under name
// (which must carry the _headroom suffix, e.g. "cloud_farm_headroom"). It
// is a readiness check: a saturated farm is alive and draining, but new
// load is being rejected, so the process should not be sent more.
func (f *Farm) RegisterHealth(h *obs.Health, name string) {
	if h == nil {
		return
	}
	h.RegisterReadiness(name, func() obs.CheckResult {
		f.mu.Lock()
		queued, closed := f.queued(), f.closed
		f.mu.Unlock()
		if closed {
			return obs.Unhealthy("farm closed")
		}
		if queued >= f.cfg.QueueDepth {
			return obs.Unhealthy(fmt.Sprintf("queue saturated at %d/%d", queued, f.cfg.QueueDepth))
		}
		return obs.Healthy(fmt.Sprintf("%d/%d queued", queued, f.cfg.QueueDepth))
	})
}

// Close stops intake and drains: every job admitted before Close ran is
// finished (its done callback runs) before Close returns. Safe to call
// more than once.
func (f *Farm) Close() {
	f.mu.Lock()
	f.closed = true
	f.work.Broadcast()
	f.space.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
}

// Snapshot returns current counters and queue-wait quantiles. The numbers
// are read from the farm's registry metrics, so Snapshot, /metrics and the
// shutdown dump can never disagree.
func (f *Farm) Snapshot() Stats {
	hs := f.waitH.Snapshot()
	return Stats{
		Workers:          f.cfg.Workers,
		QueueDepth:       f.cfg.QueueDepth,
		Queued:           int(f.queuedG.Value()),
		InFlight:         int(f.inFlightG.Value()),
		Admitted:         f.admitted.Value(),
		Completed:        f.completed.Value(),
		Rejected:         f.rejected.Value(),
		DeadlineExceeded: f.deadline.Value(),
		P50QueueWait:     hs.P50,
		P99QueueWait:     hs.P99,
	}
}
