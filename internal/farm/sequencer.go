package farm

import "sync"

// Sequencer restores submission order on a completion stream: callers
// Reserve a slot per submitted job, workers Deliver each slot's completion
// whenever it finishes, and the sequencer runs the callbacks strictly in
// slot order, one at a time. A cloud session uses one Sequencer per
// connection so decode replies leave in the order the segments arrived even
// though the farm completes them out of order.
//
// Callbacks run with the sequencer's lock held: they are serialized with
// each other (safe to write to a shared connection) but must not call
// Reserve, Deliver or Wait, and should only hand the result off.
type Sequencer struct {
	mu       sync.Mutex
	idle     sync.Cond // signaled whenever next advances
	next     uint64
	reserved uint64
	pending  map[uint64]func()
}

// Reserve claims the next slot. The caller must eventually Deliver it, or
// every later slot (and Wait) will stall.
func (s *Sequencer) Reserve() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.reserved
	s.reserved++
	return slot
}

// Deliver hands in slot's completion. If every earlier slot has already
// run, fn runs now (along with any directly following pending slots);
// otherwise it is parked until its turn. Each slot must be delivered
// exactly once.
func (s *Sequencer) Deliver(slot uint64, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		s.pending = make(map[uint64]func())
	}
	s.pending[slot] = fn
	for {
		next, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		next()
		s.idle.Broadcast() // Broadcast never touches idle.L; Wait sets it
	}
}

// Wait blocks until every reserved slot has been delivered and run. It is
// the session's pre-bye barrier: after Wait returns, all replies for
// admitted segments have been written.
func (s *Sequencer) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idle.L == nil {
		s.idle.L = &s.mu
	}
	for s.next < s.reserved {
		s.idle.Wait()
	}
}
