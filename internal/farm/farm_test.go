package farm

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/phy"
	"repro/internal/phy/xbee"
)

// echoDecode is a stub decode that reports the segment's start back, so
// tests can match results to submissions without real DSP work.
func echoDecode(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
	return backhaul.FramesReport{SegmentStart: seg.Start}, cancel.Stats{SICRounds: 1}, nil
}

func seg(start int64, samples int) backhaul.Segment {
	return backhaul.Segment{Start: start, SampleRate: 1e6, Samples: make([]complex128, samples)}
}

func TestSubmitRunsEveryJob(t *testing.T) {
	f := New(Config{Workers: 3, QueueDepth: 4, Decode: echoDecode})
	const jobs = 20
	var mu sync.Mutex
	got := make(map[int64]bool)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		if err := f.Submit(context.Background(), seg(int64(i), 10), func(r Result) {
			defer wg.Done()
			if r.Err != nil {
				t.Errorf("job failed: %v", r.Err)
			}
			mu.Lock()
			got[r.Report.SegmentStart] = true
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	f.Close()
	if len(got) != jobs {
		t.Fatalf("%d distinct results, want %d", len(got), jobs)
	}
	st := f.Snapshot()
	if st.Admitted != jobs || st.Completed != jobs || st.Rejected != 0 || st.Queued != 0 || st.InFlight != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTrySubmitRejectsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	dispatched := make(chan struct{}, 64)
	blocked := func(ctx context.Context, s backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		dispatched <- struct{}{}
		<-gate
		return backhaul.FramesReport{SegmentStart: s.Start}, cancel.Stats{}, nil
	}
	f := New(Config{Workers: 1, QueueDepth: 2, Decode: blocked})
	var done sync.WaitGroup
	submit := func() error {
		done.Add(1)
		err := f.TrySubmit(context.Background(), seg(0, 1), func(Result) { done.Done() })
		if err != nil {
			done.Done()
		}
		return err
	}
	// First job occupies the worker...
	if err := submit(); err != nil {
		t.Fatal(err)
	}
	<-dispatched
	// ...two more fill the queue...
	if err := submit(); err != nil {
		t.Fatal(err)
	}
	if err := submit(); err != nil {
		t.Fatal(err)
	}
	// ...and the fourth must be rejected, not queued.
	if err := submit(); err != ErrBusy {
		t.Fatalf("4th submit: %v, want ErrBusy", err)
	}
	close(gate)
	done.Wait()
	f.Close()
	st := f.Snapshot()
	if st.Rejected != 1 || st.Admitted != 3 || st.Completed != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCloseDrainsWithoutLoss(t *testing.T) {
	f := New(Config{Workers: 2, QueueDepth: 64, Decode: echoDecode})
	const jobs = 32
	var completed atomic.Int64
	for i := 0; i < jobs; i++ {
		if err := f.Submit(context.Background(), seg(int64(i), 100), func(r Result) {
			completed.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Close must finish every admitted job before returning.
	f.Close()
	if n := completed.Load(); n != jobs {
		t.Fatalf("drain lost jobs: %d of %d completed", n, jobs)
	}
	if err := f.Submit(context.Background(), seg(0, 1), func(Result) {}); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := f.TrySubmit(context.Background(), seg(0, 1), func(Result) {}); err != ErrClosed {
		t.Fatalf("trysubmit after close: %v, want ErrClosed", err)
	}
}

func TestCancelledJobSkipped(t *testing.T) {
	ctx, cancel0 := context.WithCancel(context.Background())
	cancel0() // dead before admission
	f := New(Config{Workers: 1, QueueDepth: 4, Decode: echoDecode})
	var wg sync.WaitGroup
	wg.Add(1)
	var res Result
	if err := f.Submit(ctx, seg(7, 10), func(r Result) { res = r; wg.Done() }); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	f.Close()
	if res.Err == nil {
		t.Fatal("cancelled job decoded anyway")
	}
	if st := f.Snapshot(); st.DeadlineExceeded != 1 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueWaitSampleClock(t *testing.T) {
	gate := make(chan struct{})
	dispatched := make(chan struct{}, 8)
	blocked := func(ctx context.Context, s backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		dispatched <- struct{}{}
		<-gate
		return backhaul.FramesReport{}, cancel.Stats{}, nil
	}
	f := New(Config{Workers: 1, QueueDepth: 8, Decode: blocked})
	var wg sync.WaitGroup
	submit := func(n int) {
		wg.Add(1)
		if err := f.Submit(context.Background(), seg(0, n), func(Result) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	submit(0) // 0-sample gate job occupies the worker without advancing the clock
	<-dispatched
	// Admitted while the worker is pinned: clock advances 100+200+300.
	submit(100)
	submit(200)
	submit(300)
	close(gate)
	wg.Wait()
	f.Close()
	// Waits on the sample clock: 600-0, 600-100, 600-300 (plus the gate
	// job's 0) -> sorted [0, 300, 500, 600].
	st := f.Snapshot()
	if st.P50QueueWait != 500 || st.P99QueueWait != 600 {
		t.Fatalf("queue-wait quantiles %+v", st)
	}
}

func TestConcurrentSubmittersRace(t *testing.T) {
	f := New(Config{Workers: 4, QueueDepth: 8, Decode: echoDecode})
	const (
		submitters = 6
		each       = 25
	)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				err := f.Submit(context.Background(), seg(int64(g*1000+i), 50), func(Result) {
					completed.Add(1)
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	f.Close()
	if n := completed.Load(); n != submitters*each {
		t.Fatalf("completed %d of %d", n, submitters*each)
	}
}

func TestSequencerOrdersOutOfOrderCompletions(t *testing.T) {
	var s Sequencer
	slots := make([]uint64, 5)
	for i := range slots {
		slots[i] = s.Reserve()
	}
	var order []uint64
	record := func(slot uint64) func() {
		return func() { order = append(order, slot) }
	}
	// Deliver out of order: 2, 4, 1, 0, 3.
	s.Deliver(slots[2], record(2))
	s.Deliver(slots[4], record(4))
	s.Deliver(slots[1], record(1))
	s.Deliver(slots[0], record(0)) // releases 0, 1, 2
	s.Deliver(slots[3], record(3)) // releases 3, 4
	s.Wait()
	for i, slot := range order {
		if slot != uint64(i) {
			t.Fatalf("reply order %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d callbacks", len(order))
	}
}

func TestSequencerWaitBlocksUntilDelivered(t *testing.T) {
	var s Sequencer
	slot := s.Reserve()
	released := make(chan struct{})
	go func() {
		s.Wait()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Wait returned with a slot outstanding")
	default:
	}
	s.Deliver(slot, func() {})
	<-released
}

func TestDecoderPoolReuses(t *testing.T) {
	builds := 0
	p := &DecoderPool{New: func(fs float64) *cancel.Decoder {
		builds++
		return cancel.NewDecoder([]phy.Technology{xbee.Default()}, fs)
	}}
	a := p.Get(1e6)
	if a == nil || builds != 1 {
		t.Fatalf("first get built %d decoders", builds)
	}
	p.Put(a)
	b := p.Get(1e6)
	if b != a {
		t.Fatal("pooled decoder not reused")
	}
	// A different sample rate must not share the pool: its templates and
	// kill filters are built for another rate.
	c := p.Get(250e3)
	if c == a || c.FS != 250e3 || builds != 2 {
		t.Fatalf("cross-rate pooling: builds=%d fs=%v", builds, c.FS)
	}
	// Putting an unknown decoder back is a no-op, not a panic.
	p.Put(nil)
	p.Put(&cancel.Decoder{FS: 42})
}
