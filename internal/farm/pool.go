package farm

import (
	"sync"

	"repro/internal/cancel"
)

// DecoderPool reuses collision decoders across segments instead of
// rebuilding the cancel.NewDecoder bank per segment (the per-segment
// reconstruction the serial cloud paid on every decode). Decoders are
// pooled per sample rate, because a decoder's correlation templates and
// kill filters are built for one rate; segments from gateways at different
// rates draw from different pools.
type DecoderPool struct {
	// New constructs a decoder for a sample rate on pool miss. Required.
	New func(fs float64) *cancel.Decoder

	mu    sync.Mutex
	pools map[float64]*sync.Pool
}

// Get returns a decoder for fs, from the pool or freshly built.
func (p *DecoderPool) Get(fs float64) *cancel.Decoder {
	p.mu.Lock()
	if p.pools == nil {
		p.pools = make(map[float64]*sync.Pool)
	}
	sp := p.pools[fs]
	if sp == nil {
		sp = &sync.Pool{}
		p.pools[fs] = sp
	}
	p.mu.Unlock()
	if d, ok := sp.Get().(*cancel.Decoder); ok {
		return d
	}
	return p.New(fs)
}

// Put returns a decoder obtained from Get for reuse.
func (p *DecoderPool) Put(d *cancel.Decoder) {
	if d == nil {
		return
	}
	p.mu.Lock()
	sp := p.pools[d.FS]
	p.mu.Unlock()
	if sp != nil {
		sp.Put(d)
	}
}
