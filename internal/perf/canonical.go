package perf

import "repro/internal/cancel"

// CanonicalStage is the deterministic skeleton of one StageResult: the
// workload-identity fields that must be byte-identical between two runs
// with the same seed, with every timing-derived measurement removed.
type CanonicalStage struct {
	Name           string         `json:"name"`
	Hot            bool           `json:"hot"`
	Iters          int            `json:"iters"`
	SamplesPerIter int            `json:"samples_per_iter"`
	FramesTotal    int            `json:"frames_total"`
	SubStages      []CanonicalSub `json:"sub_stages,omitempty"`
	DecodeStats    *cancel.Stats  `json:"decode_stats,omitempty"`
}

// CanonicalSub keeps a sub-stage's identity (how many times it ran) and
// drops its wall time.
type CanonicalSub struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

// CanonicalReport is the deterministic projection of a Report. Env is
// dropped (host-specific), Runtime is dropped (allocation totals shift
// with GC scheduling), and of the registry only counters and gauges
// survive — histogram quantiles summarize durations or queue waits, both
// of which depend on the machine.
type CanonicalReport struct {
	SchemaVersion int               `json:"schema_version"`
	Seed          uint64            `json:"seed"`
	Quick         bool              `json:"quick"`
	Stages        []CanonicalStage  `json:"stages"`
	Counters      map[string]uint64 `json:"counters"`
	Gauges        map[string]int64  `json:"gauges"`
}

// Canonical projects a report onto its deterministic skeleton. Two runs of
// Run with equal Options.Seed/Quick/Stages must produce equal Canonical
// values; TestRunDeterministic enforces this.
func Canonical(r *Report) CanonicalReport {
	c := CanonicalReport{
		SchemaVersion: r.SchemaVersion,
		Seed:          r.Seed,
		Quick:         r.Quick,
		Counters:      r.Registry.Counters,
		Gauges:        r.Registry.Gauges,
	}
	for _, st := range r.Stages {
		cs := CanonicalStage{
			Name:           st.Name,
			Hot:            st.Hot,
			Iters:          st.Iters,
			SamplesPerIter: st.SamplesPerIter,
			FramesTotal:    st.FramesTotal,
			DecodeStats:    st.DecodeStats,
		}
		for _, sub := range st.SubStages {
			cs.SubStages = append(cs.SubStages, CanonicalSub{Name: sub.Name, Count: sub.Count})
		}
		c.Stages = append(c.Stages, cs)
	}
	return c
}
