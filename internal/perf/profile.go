package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// startStageProfile begins a CPU profile for one stage when dir is
// non-empty and returns a stop function that finishes the CPU profile and
// writes a heap profile next to it. With an empty dir both are no-ops.
// Files land at <dir>/<stage>.cpu.pb.gz and <dir>/<stage>.heap.pb.gz.
func startStageProfile(dir, stage string) (stop func() error, err error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile dir: %w", err)
	}
	cpuPath := filepath.Join(dir, stage+".cpu.pb.gz")
	cpuF, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		_ = cpuF.Close() // the start failure is the error worth reporting
		return nil, fmt.Errorf("start cpu profile %s: %w", cpuPath, err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpuF.Close(); err != nil {
			return err
		}
		heapPath := filepath.Join(dir, stage+".heap.pb.gz")
		heapF, err := os.Create(heapPath)
		if err != nil {
			return err
		}
		defer heapF.Close()
		runtime.GC() // up-to-date live-object statistics
		if err := pprof.WriteHeapProfile(heapF); err != nil {
			return fmt.Errorf("write heap profile %s: %w", heapPath, err)
		}
		return nil
	}, nil
}
