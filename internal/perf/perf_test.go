package perf

import (
	"encoding/json"
	"reflect"
	"testing"
)

// fakeClock is a deterministic monotonic clock for harness tests: every
// read advances it by a fixed step, so all wall times are nonzero and
// reproducible. The step sits above Compare's MinWallNs floor because a
// stage with no internal clock reads spans exactly one step of wall time.
type fakeClock struct {
	now  int64
	step int64
}

func (c *fakeClock) read() int64 {
	c.now += c.step
	return c.now
}

// cheapStages is the harness subset the package tests run: it covers the
// collision lanes, both codec directions and the concurrent farm path
// while leaving out detect_stream and cloud_decode, whose workloads push
// a single `go test -race` run into minutes.
var cheapStages = []string{"edge_decode", "backhaul_encode", "backhaul_decode", "kill_codes", "farm_queue"}

func runQuick(t *testing.T, seed uint64) *Report {
	t.Helper()
	clk := &fakeClock{step: 2_000_000}
	rep, err := Run(Options{
		Seed:   seed,
		Quick:  true,
		Clock:  clk.read,
		Stages: cheapStages,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunDeterministic runs the quick harness twice with the same seed and
// requires the canonical projections (everything except timing-derived
// measurements) to match exactly — the package's core contract.
func TestRunDeterministic(t *testing.T) {
	a := Canonical(runQuick(t, 7))
	b := Canonical(runQuick(t, 7))

	aj, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("canonical reports differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", aj, bj)
	}
}

// TestRunSeedChangesWorkload guards against the opposite failure: if two
// different seeds canonicalize identically, the seed is not actually
// reaching the workload generators.
func TestRunSeedChangesWorkload(t *testing.T) {
	a := Canonical(runQuick(t, 7))
	b := Canonical(runQuick(t, 8))
	if reflect.DeepEqual(a.Counters, b.Counters) && reflect.DeepEqual(a.Stages, b.Stages) {
		t.Error("seeds 7 and 8 produced identical canonical reports; seed is not wired through")
	}
}

func TestRunCoversStages(t *testing.T) {
	rep := runQuick(t, 1)
	if len(rep.Stages) != len(cheapStages) {
		t.Fatalf("got %d stages, want %d", len(rep.Stages), len(cheapStages))
	}
	for i, s := range rep.Stages {
		if s.Name != cheapStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, cheapStages[i])
		}
		if s.WallNs <= 0 || s.NsPerOp <= 0 || s.NsPerSample <= 0 {
			t.Errorf("%s: non-positive timing: wall=%d ns/op=%f ns/sample=%f", s.Name, s.WallNs, s.NsPerOp, s.NsPerSample)
		}
		if s.SamplesPerIter <= 0 {
			t.Errorf("%s: SamplesPerIter = %d", s.Name, s.SamplesPerIter)
		}
	}
	if len(rep.Registry.Counters) == 0 {
		t.Error("registry snapshot has no counters; instrumentation not wired")
	}
}

func TestRunRequiresClock(t *testing.T) {
	if _, err := Run(Options{Seed: 1}); err == nil {
		t.Fatal("Run without a clock should fail")
	}
}

func TestStageNamesNonEmptyAndUnique(t *testing.T) {
	names := StageNames()
	if len(names) < 6 {
		t.Fatalf("harness covers %d stages, want at least 6", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate stage name %q", n)
		}
		seen[n] = true
	}
}

// slowdown clones a report with every stage's timing scaled by factor —
// the synthetic regression fixture the comparator must catch.
func slowdown(r *Report, factor float64) *Report {
	out := *r
	out.Stages = append([]StageResult(nil), r.Stages...)
	for i := range out.Stages {
		s := &out.Stages[i]
		s.WallNs = int64(float64(s.WallNs) * factor)
		s.NsPerOp *= factor
		s.NsPerSample *= factor
		s.SamplesPerSec /= factor
		s.FramesPerSec /= factor
	}
	return &out
}

// TestCompareFlagsSyntheticSlowdown is the acceptance fixture: a 2× wall
// slowdown of every hot stage must gate, and Regressions() must carry it.
func TestCompareFlagsSyntheticSlowdown(t *testing.T) {
	base := runQuick(t, 1)
	cur := slowdown(base, 2)

	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	regs := cmp.Regressions()
	if len(regs) == 0 {
		t.Fatalf("2x slowdown produced no gating regressions:\n%s", cmp.Render())
	}
	for _, d := range regs {
		if !d.Hot {
			t.Errorf("cold stage %s in Regressions()", d.Stage)
		}
		if d.Verdict != Regressed {
			t.Errorf("%s/%s verdict = %s", d.Stage, d.Metric, d.Verdict)
		}
	}
	// farm_queue is cold: a regression there must never gate.
	for _, d := range regs {
		if d.Stage == "farm_queue" {
			t.Error("cold farm_queue stage is gating")
		}
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	rep := runQuick(t, 1)
	cmp, err := Compare(rep, rep, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := cmp.Regressions(); len(regs) > 0 {
		t.Fatalf("self-comparison regressed:\n%s", cmp.Render())
	}
	for _, d := range cmp.Deltas {
		if d.Verdict == Regressed || d.Verdict == Improved {
			t.Errorf("self-comparison delta %s/%s = %s", d.Stage, d.Metric, d.Verdict)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	mk := func(wall int64, nsPerSample, allocs float64) *Report {
		return &Report{
			SchemaVersion: SchemaVersion,
			Stages: []StageResult{{
				Name: "edge_decode", Hot: true, Iters: 6, SamplesPerIter: 1000,
				WallNs: wall, NsPerSample: nsPerSample, AllocsPerOp: allocs,
			}},
		}
	}
	base := mk(10e6, 100, 50)

	cases := []struct {
		name    string
		cur     *Report
		metric  string
		verdict Verdict
	}{
		{"2x slower regresses", mk(20e6, 200, 50), "ns_per_sample", Regressed},
		{"2x faster improves", mk(5e6, 50, 50), "ns_per_sample", Improved},
		{"10% wobble is noise", mk(11e6, 110, 50), "ns_per_sample", Unchanged},
		{"allocs doubled regresses", mk(10e6, 100, 100), "allocs_per_op", Regressed},
		{"one extra alloc is slack", mk(10e6, 100, 51), "allocs_per_op", Unchanged},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmp, err := Compare(base, tc.cur, CompareOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range cmp.Deltas {
				if d.Metric == tc.metric {
					if d.Verdict != tc.verdict {
						t.Fatalf("%s verdict = %s, want %s\n%s", tc.metric, d.Verdict, tc.verdict, cmp.Render())
					}
					return
				}
			}
			t.Fatalf("no delta for metric %s", tc.metric)
		})
	}
}

func TestCompareSkipsBelowWallFloor(t *testing.T) {
	mk := func(wall int64, ns float64) *Report {
		return &Report{SchemaVersion: SchemaVersion, Stages: []StageResult{{
			Name: "x", Hot: true, Iters: 1, SamplesPerIter: 10, WallNs: wall, NsPerSample: ns, AllocsPerOp: -1,
		}}}
	}
	cmp, err := Compare(mk(1000, 1), mk(1000, 50), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := cmp.Deltas[0].Verdict; v != Skipped {
		t.Fatalf("sub-millisecond stage verdict = %s, want skipped", v)
	}
}

func TestCompareIncomparableIdentity(t *testing.T) {
	mk := func(iters int) *Report {
		return &Report{SchemaVersion: SchemaVersion, Stages: []StageResult{{
			Name: "x", Hot: true, Iters: iters, SamplesPerIter: 10, WallNs: 10e6, NsPerSample: 100, AllocsPerOp: -1,
		}}}
	}
	cmp, err := Compare(mk(4), mk(8), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := cmp.Deltas[0].Verdict; v != Incomparable {
		t.Fatalf("identity mismatch verdict = %s, want incomparable", v)
	}
	if len(cmp.Regressions()) != 0 {
		t.Error("incomparable stages must not gate")
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	a := &Report{SchemaVersion: SchemaVersion}
	b := &Report{SchemaVersion: SchemaVersion + 1}
	if _, err := Compare(a, b, CompareOptions{}); err == nil {
		t.Fatal("schema version mismatch should error")
	}
}

func TestCompareCoverageDrift(t *testing.T) {
	mk := func(names ...string) *Report {
		r := &Report{SchemaVersion: SchemaVersion}
		for _, n := range names {
			r.Stages = append(r.Stages, StageResult{Name: n, Hot: true, Iters: 1, SamplesPerIter: 1, WallNs: 10e6, NsPerSample: 1, AllocsPerOp: -1})
		}
		return r
	}
	cmp, err := Compare(mk("a", "b"), mk("b", "c"), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cmp.NewStages, []string{"c"}) {
		t.Errorf("NewStages = %v, want [c]", cmp.NewStages)
	}
	if !reflect.DeepEqual(cmp.RemovedStages, []string{"a"}) {
		t.Errorf("RemovedStages = %v, want [a]", cmp.RemovedStages)
	}
}

// TestCanonicalDropsTiming makes sure no timing-derived field survives the
// canonical projection (a field added to StageResult but not classified
// here will fail TestRunDeterministic the slow, flaky way; this catches it
// cheaply).
func TestCanonicalDropsTiming(t *testing.T) {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Seed:          3,
		Quick:         true,
		Stages: []StageResult{{
			Name: "x", Hot: true, Iters: 2, SamplesPerIter: 10, FramesTotal: 5,
			WallNs: 123, NsPerOp: 4, NsPerSample: 5, SamplesPerSec: 6, FramesPerSec: 7,
			AllocsPerOp: 8, BytesPerOp: 9,
			SubStages: []SubStage{{Name: "sub", Count: 3, WallNs: 99}},
		}},
		Runtime: RuntimeStats{GCCycles: 1},
	}
	c := Canonical(r)
	j, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"wall_ns", "ns_per_op", "ns_per_sample", "per_sec", "allocs_per_op", "bytes_per_op", "gc_cycles", "histograms"} {
		if contains := string(j); containsStr(contains, banned) {
			t.Errorf("canonical JSON still carries %q: %s", banned, j)
		}
	}
	if c.Stages[0].SubStages[0].Count != 3 {
		t.Error("canonical dropped sub-stage identity")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
