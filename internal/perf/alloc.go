package perf

import (
	"runtime"
	"runtime/debug"
)

// allocProbeRuns is how many iterations the allocation probe averages
// over. Small on purpose: the probe runs outside the timed loop and some
// stage iterations are expensive.
const allocProbeRuns = 5

// allocsPerRun measures average heap allocations and bytes per call of fn,
// in the spirit of testing.AllocsPerRun but usable outside a test binary.
// GC is disabled for the probe so a collection mid-run cannot skew the
// mallocs delta, and the probe pins itself to one OS thread the way the
// testing package does to keep per-P alloc caches coherent.
func allocsPerRun(runs int, fn func()) (allocsPerOp, bytesPerOp float64) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	fn() // warm the path under the probe's own regime

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)

	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(runs)
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
	return allocsPerOp, bytesPerOp
}
