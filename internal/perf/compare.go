package perf

import (
	"fmt"
	"sort"
	"strings"
)

// Verdict classifies one metric's movement between baseline and current.
type Verdict string

const (
	// Regressed: the metric moved in the bad direction past the threshold.
	Regressed Verdict = "regressed"
	// Improved: moved in the good direction past the threshold.
	Improved Verdict = "improved"
	// Unchanged: within the noise band.
	Unchanged Verdict = "unchanged"
	// Skipped: below the minimum-signal floor (too fast to trust a ratio).
	Skipped Verdict = "skipped"
	// Incomparable: workload identity differs (seed, iters, samples) — a
	// ratio would compare different work, so no verdict is issued.
	Incomparable Verdict = "incomparable"
)

// Delta is one compared metric of one stage.
type Delta struct {
	Stage  string  `json:"stage"`
	Metric string  `json:"metric"`
	Hot    bool    `json:"hot"`
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
	// Ratio is Cur/Base (1.0 = unchanged). 0 when incomparable/skipped.
	Ratio   float64 `json:"ratio"`
	Verdict Verdict `json:"verdict"`
	Note    string  `json:"note,omitempty"`
}

// Comparison is the full result of comparing a current report against a
// baseline.
type Comparison struct {
	Deltas []Delta `json:"deltas"`
	// NewStages/RemovedStages record coverage drift (non-gating, but
	// rendered so a silently dropped stage is visible).
	NewStages     []string `json:"new_stages,omitempty"`
	RemovedStages []string `json:"removed_stages,omitempty"`
	// EnvMismatch notes baseline and current came from different
	// GOOS/GOARCH/CPU-count environments; ratios still computed, trust
	// accordingly.
	EnvMismatch string `json:"env_mismatch,omitempty"`
}

// CompareOptions tunes the noise model.
type CompareOptions struct {
	// RelThreshold is the relative change that counts as movement: a
	// metric regresses when cur > base*(1+RelThreshold). Default 0.35 —
	// wide on purpose; micro-benchmark noise between unrelated commits on
	// shared CI runners routinely reaches ±20%. Raise further (CI uses 2.0)
	// when baseline and current run on different hardware.
	RelThreshold float64
	// MinWallNs is the minimum stage wall time (in both runs) for
	// time-derived ratios to be trusted; below it the stage's timing
	// deltas are Skipped. Default 1e6 (1ms).
	MinWallNs int64
	// AllocSlack is the absolute allocs/op increase tolerated before the
	// allocs metric can regress (guards integer-ish metrics where +1 alloc
	// on a 2-alloc baseline is a 50% "regression"). Default 2.
	AllocSlack float64
}

// withDefaults fills zero fields in, returning the completed copy (value
// semantics keep CompareOptions free of lock concerns).
func withDefaults(o CompareOptions) CompareOptions {
	if o.RelThreshold <= 0 {
		o.RelThreshold = 0.35
	}
	if o.MinWallNs <= 0 {
		o.MinWallNs = 1e6
	}
	if o.AllocSlack <= 0 {
		o.AllocSlack = 2
	}
	return o
}

// Compare evaluates cur against base stage by stage. Gating metrics are
// ns_per_sample (the paper's per-sample budget) and allocs_per_op; both are
// "lower is better". Throughput moves inversely and is reported via the
// same ns_per_sample delta rather than double-counted.
func Compare(base, cur *Report, opts CompareOptions) (*Comparison, error) {
	if base.SchemaVersion != cur.SchemaVersion {
		return nil, fmt.Errorf("perf: schema mismatch: baseline v%d vs current v%d", base.SchemaVersion, cur.SchemaVersion)
	}
	opts = withDefaults(opts)

	cmp := &Comparison{}
	if base.Env != cur.Env {
		cmp.EnvMismatch = fmt.Sprintf("baseline %s/%s %dcpu go %s vs current %s/%s %dcpu go %s",
			base.Env.GOOS, base.Env.GOARCH, base.Env.NumCPU, base.Env.GoVersion,
			cur.Env.GOOS, cur.Env.GOARCH, cur.Env.NumCPU, cur.Env.GoVersion)
	}

	baseBy := map[string]*StageResult{}
	for i := range base.Stages {
		baseBy[base.Stages[i].Name] = &base.Stages[i]
	}
	seen := map[string]bool{}
	for i := range cur.Stages {
		c := &cur.Stages[i]
		seen[c.Name] = true
		b, ok := baseBy[c.Name]
		if !ok {
			cmp.NewStages = append(cmp.NewStages, c.Name)
			continue
		}
		cmp.Deltas = append(cmp.Deltas, compareStage(b, c, opts)...)
	}
	for name := range baseBy {
		if !seen[name] {
			cmp.RemovedStages = append(cmp.RemovedStages, name)
		}
	}
	sort.Strings(cmp.NewStages)
	sort.Strings(cmp.RemovedStages)
	return cmp, nil
}

// compareStage emits this stage's deltas: ns_per_sample always, and
// allocs_per_op when both runs measured it.
func compareStage(b, c *StageResult, opts CompareOptions) []Delta {
	var out []Delta

	// Identity gate: comparing different workloads is meaningless, and
	// (being seed- or flag-induced) it is operator error, not regression.
	if b.Iters != c.Iters || b.SamplesPerIter != c.SamplesPerIter {
		return []Delta{{
			Stage: c.Name, Metric: "ns_per_sample", Hot: c.Hot,
			Base: b.NsPerSample, Cur: c.NsPerSample,
			Verdict: Incomparable,
			Note: fmt.Sprintf("workload identity differs: iters %d→%d, samples/iter %d→%d",
				b.Iters, c.Iters, b.SamplesPerIter, c.SamplesPerIter),
		}}
	}

	d := Delta{
		Stage: c.Name, Metric: "ns_per_sample", Hot: c.Hot,
		Base: b.NsPerSample, Cur: c.NsPerSample,
	}
	switch {
	case b.WallNs < opts.MinWallNs || c.WallNs < opts.MinWallNs:
		d.Verdict = Skipped
		d.Note = fmt.Sprintf("wall < %dms floor", opts.MinWallNs/1e6)
	case b.NsPerSample <= 0:
		d.Verdict = Skipped
		d.Note = "no baseline signal"
	default:
		d.Ratio = c.NsPerSample / b.NsPerSample
		d.Verdict = classify(d.Ratio, opts.RelThreshold)
	}
	out = append(out, d)

	if b.AllocsPerOp >= 0 && c.AllocsPerOp >= 0 {
		a := Delta{
			Stage: c.Name, Metric: "allocs_per_op", Hot: c.Hot,
			Base: b.AllocsPerOp, Cur: c.AllocsPerOp,
		}
		switch {
		case c.AllocsPerOp <= b.AllocsPerOp+opts.AllocSlack:
			if b.AllocsPerOp > 0 {
				a.Ratio = c.AllocsPerOp / b.AllocsPerOp
			}
			if b.AllocsPerOp-c.AllocsPerOp > opts.AllocSlack {
				a.Verdict = Improved
			} else {
				a.Verdict = Unchanged
			}
		case b.AllocsPerOp <= 0:
			a.Verdict = Regressed
			a.Note = "allocs appeared on an alloc-free baseline"
		default:
			a.Ratio = c.AllocsPerOp / b.AllocsPerOp
			a.Verdict = classify(a.Ratio, opts.RelThreshold)
		}
		out = append(out, a)
	}
	return out
}

// classify maps a lower-is-better ratio to a verdict.
func classify(ratio, rel float64) Verdict {
	switch {
	case ratio > 1+rel:
		return Regressed
	case ratio < 1/(1+rel):
		return Improved
	default:
		return Unchanged
	}
}

// Regressions returns the deltas that should gate: hot-stage metrics with
// a Regressed verdict. Cold stages (farm_queue) report but never gate —
// their numbers include scheduler behavior the code under test doesn't own.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Hot && d.Verdict == Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Render formats the comparison as an aligned text table.
func (c *Comparison) Render() string {
	var sb strings.Builder
	if c.EnvMismatch != "" {
		fmt.Fprintf(&sb, "WARNING: environment mismatch (%s)\n", c.EnvMismatch)
	}
	fmt.Fprintf(&sb, "%-18s %-14s %12s %12s %8s  %s\n", "STAGE", "METRIC", "BASE", "CURRENT", "RATIO", "VERDICT")
	for _, d := range c.Deltas {
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", d.Ratio)
		}
		verdict := string(d.Verdict)
		if d.Note != "" {
			verdict += " (" + d.Note + ")"
		}
		fmt.Fprintf(&sb, "%-18s %-14s %12.2f %12.2f %8s  %s\n", d.Stage, d.Metric, d.Base, d.Cur, ratio, verdict)
	}
	for _, n := range c.NewStages {
		fmt.Fprintf(&sb, "new stage (no baseline): %s\n", n)
	}
	for _, n := range c.RemovedStages {
		fmt.Fprintf(&sb, "stage missing from current run: %s\n", n)
	}
	return sb.String()
}
