// Package perf is the performance-observability harness of the GalioT
// pipeline: it replays seeded, deterministic workloads through the real
// pipeline stages (detect stream, edge decode, backhaul codec, SIC, each
// kill filter, the decode farm) and emits one structured Report per run —
// per-stage wall time, ns/sample, throughput, allocations per op, runtime
// GC/heap readings and a full metric-registry snapshot. cmd/galiot-bench
// is the command front; Compare (compare.go) turns two Reports into a
// regression verdict; DESIGN.md §12 documents the schema and policy.
//
// Determinism contract: for a fixed Options.Seed, everything in a Report
// except the timing-derived measurements (wall ns, ns/op, throughput,
// allocation counts, runtime readings, histogram quantiles) is identical
// run to run — workloads come from repro/internal/rng, iteration counts
// are fixed per stage rather than adaptive, and no wall-clock value enters
// metric identity. Canonical (canonical.go) extracts exactly that
// deterministic skeleton; TestRunDeterministic holds the package to it.
package perf

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sort"

	"repro/internal/cancel"
	"repro/internal/obs"
)

// SchemaVersion identifies the Report JSON layout. Bump on any
// field-meaning change so comparators can refuse mismatched baselines.
const SchemaVersion = 1

// Env records where a report was produced. Comparisons across differing
// environments are legal but rendered with a warning — ns/op from a
// laptop and a CI runner are different units in practice.
type Env struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// RuntimeStats is a post-run snapshot of the Go runtime, read from
// runtime/metrics. These are whole-run observations (shared across
// stages), useful for trending GC pressure, not for per-stage gating.
type RuntimeStats struct {
	GCCycles       uint64 `json:"gc_cycles"`
	HeapObjectsB   uint64 `json:"heap_objects_bytes"`
	TotalAllocB    uint64 `json:"total_alloc_bytes"`
	TotalAllocObjs uint64 `json:"total_alloc_objects"`
}

// SubStage aggregates one traced inner stage (SIC rounds, kill-filter
// invocations) across a stage's iterations: how many times it ran and the
// wall nanoseconds it consumed in total.
type SubStage struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	WallNs int64  `json:"wall_ns"`
}

// StageResult is one pipeline stage's measurements. Identity fields
// (Name, Hot, Iters, SamplesPerIter, FramesTotal, DecodeStats, SubStage
// names+counts) are deterministic under a fixed seed; the rest are
// measurements of this particular run.
type StageResult struct {
	Name string `json:"name"`
	// Hot marks stages on the per-sample streaming path; only hot stages
	// gate CI (see Compare).
	Hot bool `json:"hot"`
	// Iters is the fixed iteration count the stage ran (never adaptive —
	// adaptive counts would make workload identity depend on host speed).
	Iters int `json:"iters"`
	// SamplesPerIter is the I/Q samples one iteration consumes.
	SamplesPerIter int `json:"samples_per_iter"`
	// FramesTotal counts frames (or segments, for detect) produced across
	// all iterations — a determinism identity field and the numerator of
	// FramesPerSec.
	FramesTotal int `json:"frames_total"`

	WallNs        int64   `json:"wall_ns"`
	NsPerOp       float64 `json:"ns_per_op"`
	NsPerSample   float64 `json:"ns_per_sample"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	FramesPerSec  float64 `json:"frames_per_sec"`

	// AllocsPerOp/BytesPerOp come from a testing.AllocsPerRun-style probe
	// (alloc.go). -1 means not measured (concurrent stages skip the probe:
	// worker goroutines make per-op attribution meaningless).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// SubStages aggregates traced inner stages across iterations (SIC
	// rounds, kill filters), sorted by name.
	SubStages []SubStage `json:"sub_stages,omitempty"`
	// DecodeStats accumulates cancel.Stats over all iterations for stages
	// that decode.
	DecodeStats *cancel.Stats `json:"decode_stats,omitempty"`
}

// Report is one galiot-bench run. It deliberately carries no timestamp:
// the report must be byte-comparable across runs (minus measurements), so
// "when" lives in the filename or CI metadata, never in the schema.
type Report struct {
	SchemaVersion int           `json:"schema_version"`
	Seed          uint64        `json:"seed"`
	Quick         bool          `json:"quick"`
	Env           Env           `json:"env"`
	Stages        []StageResult `json:"stages"`
	Runtime       RuntimeStats  `json:"runtime"`
	// Registry is the full metric snapshot after the run: stage counters,
	// queue-wait quantiles, codec byte counts — everything the pipeline's
	// own instrumentation observed while being benchmarked.
	Registry obs.Snapshot `json:"registry"`
}

// Options configures Run.
type Options struct {
	// Seed roots every workload generator. Same seed, same workloads.
	Seed uint64
	// Quick shrinks workloads and iteration counts for CI gating (~seconds
	// instead of minutes).
	Quick bool
	// Clock supplies wall-clock nanoseconds (inject time.Now().UnixNano —
	// the package itself never reads the wall clock, per the repository's
	// determinism rules). Required.
	Clock func() int64
	// Stages filters which stages run (by name); empty runs all.
	Stages []string
	// ProfileDir, when non-empty, receives per-stage CPU and heap profiles
	// (<stage>.cpu.pb.gz, <stage>.heap.pb.gz).
	ProfileDir string
	// Registry receives the pipeline's instrumentation during the run; nil
	// creates a private one. Either way it is snapshotted into the Report.
	Registry *obs.Registry
}

// StageNames lists every stage Run knows, in execution order.
func StageNames() []string {
	defs := stageDefs()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.name
	}
	return names
}

// Run executes the harness and returns the report.
func Run(opts Options) (*Report, error) {
	if opts.Clock == nil {
		return nil, fmt.Errorf("perf: Options.Clock is required")
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	want := make(map[string]bool, len(opts.Stages))
	for _, n := range opts.Stages {
		want[n] = true
	}

	rep := &Report{
		SchemaVersion: SchemaVersion,
		Seed:          opts.Seed,
		Quick:         opts.Quick,
		Env: Env{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	bench := &workbench{opts: opts, reg: reg}
	for _, def := range stageDefs() {
		if len(want) > 0 && !want[def.name] {
			continue
		}
		res, err := runStage(bench, def)
		if err != nil {
			return nil, fmt.Errorf("perf: stage %s: %w", def.name, err)
		}
		rep.Stages = append(rep.Stages, res)
	}
	rep.Runtime = readRuntimeStats()
	rep.Registry = reg.Snapshot()
	return rep, nil
}

// runStage builds one stage's workload, probes allocations, runs the timed
// loop (optionally under a CPU profile) and assembles the result.
func runStage(b *workbench, def stageDef) (StageResult, error) {
	r, err := def.build(b)
	if err != nil {
		return StageResult{}, err
	}
	if r.close != nil {
		defer r.close()
	}
	iters := def.fullIters
	if b.opts.Quick {
		iters = def.quickIters
	}

	// Warm up: one untimed iteration settles lazy initialization (FFT
	// plans, pooled buffers) so neither the alloc probe nor the timed loop
	// measures first-call costs.
	r.run()

	allocs, bytes := -1.0, -1.0
	if !def.skipAlloc {
		allocs, bytes = allocsPerRun(allocProbeRuns, func() { r.run() })
	}

	// Sub-stage traces and decode stats restart here so they cover exactly
	// the timed iterations, not warmup or probe runs.
	if r.trace != nil {
		r.trace.t = obs.NewTracer(2*iters + 8)
		r.trace.t.SetClock(b.opts.Clock)
	}
	if r.stats != nil {
		*r.stats = cancel.Stats{}
	}
	stop, err := startStageProfile(b.opts.ProfileDir, def.name)
	if err != nil {
		return StageResult{}, err
	}
	frames := 0
	start := b.opts.Clock()
	for i := 0; i < iters; i++ {
		frames += r.run()
	}
	wall := b.opts.Clock() - start
	if err := stop(); err != nil {
		return StageResult{}, err
	}
	if wall < 1 {
		wall = 1 // a clock too coarse for the stage: avoid divide-by-zero
	}

	res := StageResult{
		Name:           def.name,
		Hot:            def.hot,
		Iters:          iters,
		SamplesPerIter: r.samplesPerIter,
		FramesTotal:    frames,
		WallNs:         wall,
		NsPerOp:        float64(wall) / float64(iters),
		AllocsPerOp:    allocs,
		BytesPerOp:     bytes,
	}
	totalSamples := float64(r.samplesPerIter) * float64(iters)
	if totalSamples > 0 {
		res.NsPerSample = float64(wall) / totalSamples
		res.SamplesPerSec = totalSamples / float64(wall) * 1e9
	}
	res.FramesPerSec = float64(frames) / float64(wall) * 1e9
	if r.stats != nil {
		st := *r.stats
		res.DecodeStats = &st
	}
	if r.trace != nil {
		res.SubStages = aggregateSubStages(r.trace.t)
	}
	return res, nil
}

// aggregateSubStages folds every span in tr's ring into per-name
// invocation counts and total wall time, sorted by name.
func aggregateSubStages(tr *obs.Tracer) []SubStage {
	agg := map[string]*SubStage{}
	var names []string
	for _, trace := range tr.Recent() {
		for _, sp := range trace.Spans {
			for _, st := range sp.Stages {
				s := agg[st.Name]
				if s == nil {
					s = &SubStage{Name: st.Name}
					agg[st.Name] = s
					names = append(names, st.Name)
				}
				s.Count++
				s.WallNs += st.Dur
			}
		}
	}
	sort.Strings(names)
	out := make([]SubStage, len(names))
	for i, n := range names {
		out[i] = *agg[n]
	}
	return out
}

// readRuntimeStats samples the runtime/metrics gauges the report trends.
func readRuntimeStats() RuntimeStats {
	samples := []metrics.Sample{
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	metrics.Read(samples)
	u64 := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	return RuntimeStats{
		GCCycles:       u64(0),
		HeapObjectsB:   u64(1),
		TotalAllocB:    u64(2),
		TotalAllocObjs: u64(3),
	}
}
