package perf

import (
	"context"
	"fmt"
	"net"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/cloud"
	"repro/internal/detect"
	"repro/internal/farm"
	"repro/internal/frontend"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/phy/lora"
	"repro/internal/phy/oqpsk"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
	"repro/internal/sim"
)

// benchSampleRate matches the paper's gateway capture rate (and
// galiot.SampleRate; internal/perf cannot import the facade).
const benchSampleRate = 1e6

// Seed-split lanes: each stage's workload generator derives from the root
// seed through a fixed lane so adding a stage never perturbs the others.
const (
	laneTraffic = iota
	laneColl2
	laneColl3
	laneCollDSSS
	laneFarm
	laneE2E
)

// workbench carries what every stage build shares.
type workbench struct {
	opts Options
	reg  *obs.Registry
}

// gen derives the deterministic generator for one lane of the seed.
func (b *workbench) gen(lane uint64) *rng.Rand {
	return rng.New(b.opts.Seed).Split(lane)
}

// techs returns fresh prototype technology instances (LoRa, XBee, Z-Wave —
// the paper's set, same order as the galiot facade).
func (b *workbench) techs() []phy.Technology {
	return []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
}

// traceBox lets runStage swap in a fresh tracer before the timed loop
// while stage closures keep one stable pointer to read through.
type traceBox struct {
	t *obs.Tracer
}

// runner is one built stage: a closed-over workload plus metadata.
type runner struct {
	samplesPerIter int
	// run executes one iteration and returns the frames (or segments)
	// produced.
	run func() int
	// trace, when set, collects sub-stage spans (runStage resets it before
	// the timed loop and aggregates it after).
	trace *traceBox
	// stats, when set, accumulates decode statistics across iterations.
	stats *cancel.Stats
	// close releases stage resources (farm workers) after measurement.
	close func()
}

// stageDef declares one stage of the harness.
type stageDef struct {
	name string
	hot  bool
	// Fixed iteration counts — never adaptive, so workload identity is
	// byte-stable across hosts and runs.
	quickIters int
	fullIters  int
	// skipAlloc disables the allocation probe (concurrent stages: worker
	// goroutines make per-op attribution meaningless).
	skipAlloc bool
	build     func(b *workbench) (*runner, error)
}

// trafficLen is the detect workload size in samples — one frontend
// capture buffer per iteration. It must comfortably exceed twice the
// largest packet airtime of the stage's technologies: detect.Stream holds
// back any segment within maxPacket/2 of the buffer end, so pushes smaller
// than a packet never clear the hold-back window and the stream emits
// nothing (the gateway likewise pushes whole capture buffers).
func trafficLen(quick bool) int {
	if quick {
		return 1 << 18
	}
	return 1 << 19
}

// stageDefs returns every stage in execution order. Stage names are part
// of the BENCH.json contract (DESIGN.md §12); renaming one orphans its
// baseline series.
func stageDefs() []stageDef {
	return []stageDef{
		{name: "detect_stream", hot: true, quickIters: 4, fullIters: 16, build: buildDetectStream},
		{name: "edge_decode", hot: true, quickIters: 6, fullIters: 24, build: buildEdgeDecode},
		{name: "backhaul_encode", hot: true, quickIters: 64, fullIters: 256, build: buildBackhaulEncode},
		{name: "backhaul_decode", hot: true, quickIters: 64, fullIters: 256, build: buildBackhaulDecode},
		{name: "sic_decode", hot: true, quickIters: 4, fullIters: 16, build: buildSICDecode},
		{name: "cloud_decode", hot: true, quickIters: 4, fullIters: 16, build: buildCloudDecode},
		{name: "kill_freq", hot: true, quickIters: 16, fullIters: 64, build: buildKillFreq},
		{name: "kill_css", hot: true, quickIters: 8, fullIters: 32, build: buildKillCSS},
		{name: "kill_codes", hot: true, quickIters: 8, fullIters: 32, build: buildKillCodes},
		{name: "farm_queue", hot: false, quickIters: 8, fullIters: 32, skipAlloc: true, build: buildFarmQueue},
		{name: "e2e_gateway_cloud", hot: false, quickIters: 2, fullIters: 8, skipAlloc: true, build: buildE2EGatewayCloud},
	}
}

// coll2 renders the standard 2-way collision workload (mirrors
// BenchmarkCloudDecodeCollision).
func (b *workbench) coll2() (sim.Scenario, error) {
	techs := b.techs()
	return sim.GenCollision([]sim.CollisionSpec{
		{Tech: techs[0], SNRdB: 12, PayloadLen: 8},
		{Tech: techs[1], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.05},
	}, benchSampleRate, 4000, b.gen(laneColl2))
}

// coll3 renders the 3-way collision exercising every prototype technology
// (mirrors BenchmarkAblationKillFilters).
func (b *workbench) coll3() (sim.Scenario, error) {
	techs := b.techs()
	return sim.GenCollision([]sim.CollisionSpec{
		{Tech: techs[0], SNRdB: 12, PayloadLen: 8},
		{Tech: techs[1], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.05},
		{Tech: techs[2], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.1},
	}, benchSampleRate, 4000, b.gen(laneColl3))
}

// buildDetectStream replays seeded multi-tech traffic through the
// continuous detection stream, one whole capture buffer per Push, the way
// the gateway's frontend loop does. The stage uses the FSK/DSSS subset
// (XBee + Z-Wave): LoRa's maximum airtime at SF7 is ~174k samples, which
// would demand multi-megasample captures before the stream's hold-back
// window lets any segment out — out of scale for a harness iteration.
func buildDetectStream(b *workbench) (*runner, error) {
	techs := []phy.Technology{xbee.Default(), zwave.Default()}
	scen, err := sim.GenTraffic(sim.TrafficConfig{
		Techs:      techs,
		SampleRate: benchSampleRate,
		Duration:   trafficLen(b.opts.Quick),
		MeanGap:    0.12,
		SNRMin:     8,
		SNRMax:     15,
	}, b.gen(laneTraffic))
	if err != nil {
		return nil, err
	}
	det, err := detect.NewUniversal(techs, benchSampleRate, 0.08)
	if err != nil {
		return nil, err
	}
	maxPacket := 0
	for _, t := range techs {
		if n := t.MaxPacketSamples(benchSampleRate); n > maxPacket {
			maxPacket = n
		}
	}
	stream := detect.NewStream(det, maxPacket)
	stream.SetMetrics(detect.NewStreamMetricsTimed(b.reg, b.opts.Clock))
	capture := scen.Capture
	return &runner{
		samplesPerIter: len(capture),
		run: func() int {
			return len(stream.Push(capture))
		},
	}, nil
}

// buildEdgeDecode measures the gateway's edge decoder (single-pass SIC, no
// kill filters) on a 2-way collision — the cost the edge pays before
// deciding to ship.
func buildEdgeDecode(b *workbench) (*runner, error) {
	scen, err := b.coll2()
	if err != nil {
		return nil, err
	}
	dec := cancel.NewSIC(b.techs(), benchSampleRate)
	dec.MaxRounds = 1
	stats := &cancel.Stats{}
	return &runner{
		samplesPerIter: len(scen.Capture),
		stats:          stats,
		run: func() int {
			frames, st := dec.Decode(scen.Capture)
			stats.Add(st)
			return len(frames)
		},
	}, nil
}

// buildBackhaulEncode measures segment serialization (AGC + quantize +
// DEFLATE + CRC), with codec metrics on the registry so the report also
// carries the achieved wire bytes per sample.
func buildBackhaulEncode(b *workbench) (*runner, error) {
	scen, err := b.coll2()
	if err != nil {
		return nil, err
	}
	codec := backhaul.DefaultCodec
	codec.Metrics = backhaul.NewCodecMetrics(b.reg)
	seg := backhaul.Segment{Start: 0, SampleRate: benchSampleRate, Samples: scen.Capture}
	return &runner{
		samplesPerIter: len(scen.Capture),
		run: func() int {
			if _, err := codec.Encode(seg); err != nil {
				panic(fmt.Sprintf("perf: backhaul encode: %v", err))
			}
			return 0
		},
	}, nil
}

// buildBackhaulDecode measures the receive side of the codec on a payload
// encoded once up front.
func buildBackhaulDecode(b *workbench) (*runner, error) {
	scen, err := b.coll2()
	if err != nil {
		return nil, err
	}
	payload, err := backhaul.DefaultCodec.Encode(backhaul.Segment{
		Start: 0, SampleRate: benchSampleRate, Samples: scen.Capture,
	})
	if err != nil {
		return nil, err
	}
	return &runner{
		samplesPerIter: len(scen.Capture),
		run: func() int {
			if _, err := backhaul.DecodeSegment(payload); err != nil {
				panic(fmt.Sprintf("perf: backhaul decode: %v", err))
			}
			return 0
		},
	}, nil
}

// buildSICDecode measures the plain SIC baseline (full rounds, no kill
// filters) on the 3-way collision.
func buildSICDecode(b *workbench) (*runner, error) {
	scen, err := b.coll3()
	if err != nil {
		return nil, err
	}
	dec := cancel.NewSIC(b.techs(), benchSampleRate)
	stats := &cancel.Stats{}
	box := &traceBox{}
	return &runner{
		samplesPerIter: len(scen.Capture),
		stats:          stats,
		trace:          box,
		run: func() int {
			sp := box.t.Start("perf-sic", 0)
			frames, st := dec.DecodeTraced(scen.Capture, sp)
			sp.End()
			stats.Add(st)
			return len(frames)
		},
	}, nil
}

// buildCloudDecode measures full Algorithm 1 (SIC wrapped around the kill
// filters) on the 3-way collision; traced spans break the cost into
// sic_round and kill_* sub-stages.
func buildCloudDecode(b *workbench) (*runner, error) {
	scen, err := b.coll3()
	if err != nil {
		return nil, err
	}
	dec := cancel.NewDecoder(b.techs(), benchSampleRate)
	stats := &cancel.Stats{}
	box := &traceBox{}
	return &runner{
		samplesPerIter: len(scen.Capture),
		stats:          stats,
		trace:          box,
		run: func() int {
			sp := box.t.Start("perf-cloud", 0)
			frames, st := dec.DecodeTraced(scen.Capture, sp)
			sp.End()
			stats.Add(st)
			return len(frames)
		},
	}, nil
}

// buildKillFreq measures KILL-FREQUENCY: notching the XBee GFSK tones out
// of the 3-way collision.
func buildKillFreq(b *workbench) (*runner, error) {
	scen, err := b.coll3()
	if err != nil {
		return nil, err
	}
	radio := xbee.Default()
	tones := radio.Tones()
	width := cancel.FSKKillWidth(radio.BitRate())
	return &runner{
		samplesPerIter: len(scen.Capture),
		run: func() int {
			cancel.KillFrequency(scen.Capture, tones, width, benchSampleRate)
			return 0
		},
	}, nil
}

// buildKillCSS measures KILL-CSS: dechirp, notch and re-chirp the LoRa
// energy in the 3-way collision.
func buildKillCSS(b *workbench) (*runner, error) {
	scen, err := b.coll3()
	if err != nil {
		return nil, err
	}
	killer := cancel.NewCSSKiller(lora.Default())
	return &runner{
		samplesPerIter: len(scen.Capture),
		run: func() int {
			killer.Apply(scen.Capture, benchSampleRate)
			return 0
		},
	}, nil
}

// buildKillCodes measures KILL-CODES: projecting the O-QPSK DSSS burst out
// of a collision with Z-Wave.
func buildKillCodes(b *workbench) (*runner, error) {
	scen, err := sim.GenCollision([]sim.CollisionSpec{
		{Tech: oqpsk.Default(), SNRdB: 12, PayloadLen: 8},
		{Tech: zwave.Default(), SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.05},
	}, benchSampleRate, 4000, b.gen(laneCollDSSS))
	if err != nil {
		return nil, err
	}
	coded := oqpsk.Default()
	return &runner{
		samplesPerIter: len(scen.Capture),
		run: func() int {
			cancel.KillCodes(scen.Capture, coded, benchSampleRate, 0.05)
			return 0
		},
	}, nil
}

// buildE2EGatewayCloud measures the whole pipeline end to end the way
// examples/gateway-cloud runs it: one seeded capture per iteration through
// a real gateway session — detection, segment encode, the backhaul wire
// (an in-memory pipe), inline cloud decode, and the frames report coming
// back. The ns/op of this stage is the e2e decode latency of a capture.
// Concurrent by construction (session reader/writer goroutines and the
// cloud side), so it is not a hot (gating) stage and skips the alloc probe.
func buildE2EGatewayCloud(b *workbench) (*runner, error) {
	techs := []phy.Technology{xbee.Default(), zwave.Default()}
	scen, err := sim.GenTraffic(sim.TrafficConfig{
		Techs:      techs,
		SampleRate: benchSampleRate,
		Duration:   1 << 16,
		MeanGap:    0.005,
		SNRMin:     12,
		SNRMax:     18,
		PayloadMin: 6,
		PayloadMax: 14,
	}, b.gen(laneE2E))
	if err != nil {
		return nil, err
	}
	g, err := gateway.New(gateway.Config{
		ID:       "perf-e2e",
		Techs:    techs,
		Frontend: frontend.Ideal(benchSampleRate),
	})
	if err != nil {
		return nil, err
	}
	svc := cloud.NewService(techs)
	capture := scen.Capture
	return &runner{
		samplesPerIter: len(capture),
		run: func() int {
			gw, cl := net.Pipe()
			var srvWG sync.WaitGroup
			srvWG.Add(1)
			go func() {
				defer srvWG.Done()
				// A clean bye returns nil; anything else is a harness bug.
				if err := svc.ServeConn(cl); err != nil {
					panic(fmt.Sprintf("perf: e2e cloud session: %v", err))
				}
			}()
			captures := make(chan []complex128, 1)
			captures <- capture
			close(captures)
			frames := 0
			if err := g.Run(gw, captures, func(r backhaul.FramesReport) {
				frames += len(r.Frames)
			}); err != nil {
				panic(fmt.Sprintf("perf: e2e gateway session: %v", err))
			}
			_ = gw.Close()
			_ = cl.Close()
			srvWG.Wait()
			return frames
		},
	}, nil
}

// farmBatch is the segments submitted per farm_queue iteration.
const farmBatch = 8

// buildFarmQueue measures the decode farm's scheduling overhead: a batch
// of segments through admission, queue, worker dispatch and completion,
// with a trivial decode so the queue machinery dominates. Concurrent by
// design, so it is not a hot (gating) stage and skips the alloc probe.
func buildFarmQueue(b *workbench) (*runner, error) {
	base := b.gen(laneFarm)
	techs := b.techs()
	segs := make([]backhaul.Segment, 0, farmBatch)
	var start int64
	for i := 0; i < farmBatch; i++ {
		scen, err := sim.GenCollision([]sim.CollisionSpec{
			{Tech: techs[i%len(techs)], SNRdB: 12, PayloadLen: 8},
			{Tech: techs[(i+1)%len(techs)], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.1},
		}, benchSampleRate, 3000, base.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		segs = append(segs, backhaul.Segment{Start: start, SampleRate: benchSampleRate, Samples: scen.Capture})
		start += int64(len(scen.Capture))
	}
	samples := 0
	for _, s := range segs {
		samples += len(s.Samples)
	}
	f := farm.New(farm.Config{
		Workers:    4,
		QueueDepth: farmBatch,
		Obs:        b.reg,
		Clock:      b.opts.Clock,
		Decode: func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
			return backhaul.FramesReport{SegmentStart: seg.Start}, cancel.Stats{}, nil
		},
	})
	return &runner{
		samplesPerIter: samples,
		close:          f.Close,
		run: func() int {
			var wg sync.WaitGroup
			for _, seg := range segs {
				wg.Add(1)
				if err := f.Submit(context.Background(), seg, func(farm.Result) { wg.Done() }); err != nil {
					panic(fmt.Sprintf("perf: farm submit: %v", err))
				}
			}
			wg.Wait()
			return farmBatch
		},
	}, nil
}
