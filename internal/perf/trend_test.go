package perf

import (
	"math"
	"strings"
	"testing"
)

func trendReport(stages ...StageResult) *Report {
	return &Report{SchemaVersion: SchemaVersion, Stages: stages}
}

// TestTrendDeltas covers the core table: per-run readings in argument
// order, newest/oldest deltas on both metrics, a stage that joins the
// series mid-shelf, and the allocs row only appearing when some run
// measured it.
func TestTrendDeltas(t *testing.T) {
	r1 := trendReport(
		StageResult{Name: "detect_stream", Hot: true, Iters: 4, SamplesPerIter: 1024, NsPerSample: 20, AllocsPerOp: -1},
		StageResult{Name: "edge_decode", Iters: 2, SamplesPerIter: 512, NsPerSample: 50, AllocsPerOp: 8},
	)
	r2 := trendReport(
		StageResult{Name: "detect_stream", Hot: true, Iters: 4, SamplesPerIter: 1024, NsPerSample: 15, AllocsPerOp: -1},
		StageResult{Name: "edge_decode", Iters: 2, SamplesPerIter: 512, NsPerSample: 45, AllocsPerOp: 8},
		StageResult{Name: "sic_cancel", Iters: 1, SamplesPerIter: 256, NsPerSample: 100, AllocsPerOp: -1},
	)
	r3 := trendReport(
		StageResult{Name: "detect_stream", Hot: true, Iters: 4, SamplesPerIter: 1024, NsPerSample: 10, AllocsPerOp: -1},
		StageResult{Name: "edge_decode", Iters: 2, SamplesPerIter: 512, NsPerSample: 40, AllocsPerOp: 4},
		StageResult{Name: "sic_cancel", Iters: 1, SamplesPerIter: 256, NsPerSample: 90, AllocsPerOp: -1},
	)
	tr, err := TrendOf([]string{"a.json", "b.json", "c.json"}, []*Report{r1, r2, r3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.EnvMismatch != "" {
		t.Errorf("env mismatch on identical envs: %s", tr.EnvMismatch)
	}

	rows := map[string]TrendRow{}
	for _, r := range tr.Rows {
		rows[r.Stage+"/"+r.Metric] = r
	}

	d, ok := rows["detect_stream/ns_per_sample"]
	if !ok {
		t.Fatalf("no detect_stream ns row in %+v", tr.Rows)
	}
	if !d.Hot {
		t.Error("detect_stream lost its hot mark")
	}
	if d.Values[0] != 20 || d.Values[1] != 15 || d.Values[2] != 10 {
		t.Errorf("detect_stream readings = %v, want [20 15 10]", d.Values)
	}
	if d.Ratio != 0.5 {
		t.Errorf("detect_stream ratio = %v, want 0.5", d.Ratio)
	}
	if _, ok := rows["detect_stream/allocs_per_op"]; ok {
		t.Error("allocs row emitted for a stage no run measured")
	}

	if a := rows["edge_decode/allocs_per_op"]; a.Ratio != 0.5 {
		t.Errorf("edge_decode allocs ratio = %v, want 0.5", a.Ratio)
	}

	s := rows["sic_cancel/ns_per_sample"]
	if !math.IsNaN(s.Values[0]) {
		t.Errorf("sic_cancel has a reading before it existed: %v", s.Values)
	}
	if s.Ratio != 90.0/100.0 {
		t.Errorf("sic_cancel ratio = %v, want 0.9 over its present runs", s.Ratio)
	}

	out := tr.Render()
	for _, want := range []string{"a.json", "c.json", "detect_stream", "-50.0%", "-10.0%", "allocs_per_op"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trend is missing %q:\n%s", want, out)
		}
	}
	// sic_cancel's pre-existence cell renders as a dash, not a zero.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sic_cancel") {
			continue
		}
		if f := strings.Fields(line); len(f) < 3 || f[2] != "-" {
			t.Errorf("absent reading not dashed: %s", line)
		}
	}
}

// TestTrendIdentityDrift extends Compare's identity gate across the
// series: once iters or samples/iter move, the delta is meaningless and
// must be withheld.
func TestTrendIdentityDrift(t *testing.T) {
	r1 := trendReport(StageResult{Name: "detect_stream", Iters: 4, SamplesPerIter: 1024, NsPerSample: 20, AllocsPerOp: -1})
	r2 := trendReport(StageResult{Name: "detect_stream", Iters: 8, SamplesPerIter: 1024, NsPerSample: 10, AllocsPerOp: -1})
	tr, err := TrendOf([]string{"a", "b"}, []*Report{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	row := tr.Rows[0]
	if row.Ratio != 0 {
		t.Errorf("drifted identity still produced a ratio: %v", row.Ratio)
	}
	if !strings.Contains(row.Note, "identity") {
		t.Errorf("drift note missing: %+v", row)
	}
}

// TestTrendStableSeries pins the ratio of a flat series to exactly 1.
func TestTrendStableSeries(t *testing.T) {
	mk := func() *Report {
		return trendReport(StageResult{Name: "detect_stream", Iters: 4, SamplesPerIter: 1024, NsPerSample: 20, AllocsPerOp: -1})
	}
	tr, err := TrendOf([]string{"a", "b"}, []*Report{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows[0].Ratio != 1 {
		t.Errorf("flat series ratio = %v, want 1", tr.Rows[0].Ratio)
	}
	if !strings.Contains(tr.Render(), "+0.0%") {
		t.Errorf("flat series delta not rendered as +0.0%%:\n%s", tr.Render())
	}
}

// TestTrendErrors rejects malformed series: one report is not a trend,
// schema versions must agree, and labels must pair with reports.
func TestTrendErrors(t *testing.T) {
	one := trendReport()
	if _, err := TrendOf([]string{"a"}, []*Report{one}); err == nil {
		t.Error("single-report trend accepted")
	}
	bad := &Report{SchemaVersion: SchemaVersion + 1}
	if _, err := TrendOf([]string{"a", "b"}, []*Report{one, bad}); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := TrendOf([]string{"a"}, []*Report{one, one}); err == nil {
		t.Error("label/report count mismatch accepted")
	}
}

// TestTrendEnvMismatch flags a series whose reports came from different
// machines without refusing to render it.
func TestTrendEnvMismatch(t *testing.T) {
	r1 := trendReport()
	r2 := trendReport()
	r2.Env.GOARCH = "arm64"
	tr, err := TrendOf([]string{"a", "b"}, []*Report{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.EnvMismatch == "" {
		t.Error("differing envs went unflagged")
	}
	if !strings.Contains(tr.Render(), "WARNING: environment mismatch") {
		t.Error("env warning missing from render")
	}
}
