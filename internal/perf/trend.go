package perf

import (
	"fmt"
	"math"
	"strings"
)

// Trend is a benchstat-style view across an ordered series of reports
// (oldest first): one row per stage metric, one value column per run, and
// an oldest→newest delta. Where Compare answers "did this run regress
// against that one", Trend answers "which way has this stage been moving"
// over a shelf of BENCH.json artifacts. Reports deliberately carry no
// timestamp (see Report), so the caller's argument order is the timeline.
//
// Trend is a presentation structure, not part of the report schema:
// missing readings are NaN, which has no JSON encoding.
type Trend struct {
	// Labels name the runs in column order; callers usually pass the
	// report file names.
	Labels []string
	Rows   []TrendRow
	// EnvMismatch notes that not every report came from the same
	// GOOS/GOARCH/CPU-count environment; deltas are still computed,
	// trust accordingly.
	EnvMismatch string
}

// TrendRow is one stage metric across every run.
type TrendRow struct {
	Stage  string
	Metric string
	Hot    bool
	// Values holds one reading per run, report order. NaN marks a run
	// that lacks the stage (or did not measure allocs); it renders "-".
	Values []float64
	// Ratio is newest/oldest over the runs that have a reading (lower is
	// better, same convention as Delta.Ratio). 0 when fewer than two runs
	// have one, the oldest reading is zero, or the workload identity
	// drifted across the series.
	Ratio float64
	Note  string
}

// TrendOf builds the trend table from reports ordered oldest→newest, one
// label per report. At least two reports are required, and all must share
// a schema version.
func TrendOf(labels []string, reports []*Report) (*Trend, error) {
	if len(labels) != len(reports) {
		return nil, fmt.Errorf("perf: %d labels for %d reports", len(labels), len(reports))
	}
	if len(reports) < 2 {
		return nil, fmt.Errorf("perf: a trend needs at least two reports, got %d", len(reports))
	}
	for i, r := range reports[1:] {
		if r.SchemaVersion != reports[0].SchemaVersion {
			return nil, fmt.Errorf("perf: schema mismatch: %s v%d vs %s v%d",
				labels[0], reports[0].SchemaVersion, labels[i+1], r.SchemaVersion)
		}
	}

	t := &Trend{Labels: labels}
	for i, r := range reports[1:] {
		if r.Env != reports[0].Env {
			t.EnvMismatch = fmt.Sprintf("%s ran on %s/%s %dcpu go %s, %s on %s/%s %dcpu go %s",
				labels[0], reports[0].Env.GOOS, reports[0].Env.GOARCH, reports[0].Env.NumCPU, reports[0].Env.GoVersion,
				labels[i+1], r.Env.GOOS, r.Env.GOARCH, r.Env.NumCPU, r.Env.GoVersion)
			break
		}
	}

	// Stage order is first appearance across the series, so a stage added
	// mid-shelf lands after the long-lived ones rather than reshuffling
	// the table.
	var order []string
	byStage := map[string]map[int]*StageResult{}
	for run, r := range reports {
		for i := range r.Stages {
			s := &r.Stages[i]
			m, ok := byStage[s.Name]
			if !ok {
				m = map[int]*StageResult{}
				byStage[s.Name] = m
				order = append(order, s.Name)
			}
			m[run] = s
		}
	}

	for _, name := range order {
		runs := byStage[name]
		t.Rows = append(t.Rows, trendRow(name, "ns_per_sample", runs, len(reports),
			func(s *StageResult) float64 {
				if s.NsPerSample <= 0 {
					return math.NaN()
				}
				return s.NsPerSample
			}))
		measured := false
		for _, s := range runs {
			if s.AllocsPerOp >= 0 {
				measured = true
				break
			}
		}
		if measured {
			t.Rows = append(t.Rows, trendRow(name, "allocs_per_op", runs, len(reports),
				func(s *StageResult) float64 {
					if s.AllocsPerOp < 0 {
						return math.NaN()
					}
					return s.AllocsPerOp
				}))
		}
	}
	return t, nil
}

// trendRow assembles one stage metric's row: per-run readings, the
// newest/oldest ratio, and the identity gate Compare applies pairwise,
// extended across the whole series.
func trendRow(stage, metric string, runs map[int]*StageResult, n int, read func(*StageResult) float64) TrendRow {
	row := TrendRow{Stage: stage, Metric: metric, Values: make([]float64, n)}
	for i := range row.Values {
		row.Values[i] = math.NaN()
	}
	var first *StageResult
	drift := false
	for i := 0; i < n; i++ {
		s, ok := runs[i]
		if !ok {
			continue
		}
		row.Hot = s.Hot
		if first == nil {
			first = s
		} else if s.Iters != first.Iters || s.SamplesPerIter != first.SamplesPerIter {
			drift = true
		}
		row.Values[i] = read(s)
	}
	if drift {
		row.Note = "workload identity drifts across runs; no delta"
		return row
	}
	oldest, newest := math.NaN(), math.NaN()
	for _, v := range row.Values {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(oldest) {
			oldest = v
		}
		newest = v
	}
	// A flat series divides to exactly 1: IEEE x/x is exact for finite
	// nonzero x, so no equality special case is needed.
	if oldest > 0 && !math.IsNaN(newest) {
		row.Ratio = newest / oldest
	}
	return row
}

// Render formats the trend as an aligned table, one column per run,
// oldest on the left, plus the oldest→newest delta.
func (t *Trend) Render() string {
	var sb strings.Builder
	if t.EnvMismatch != "" {
		fmt.Fprintf(&sb, "WARNING: environment mismatch (%s)\n", t.EnvMismatch)
	}
	widths := make([]int, len(t.Labels))
	for i, l := range t.Labels {
		widths[i] = len(l)
		if widths[i] < 12 {
			widths[i] = 12
		}
	}
	fmt.Fprintf(&sb, "%-18s %-14s", "STAGE", "METRIC")
	for i, l := range t.Labels {
		fmt.Fprintf(&sb, " %*s", widths[i], l)
	}
	fmt.Fprintf(&sb, " %9s\n", "DELTA")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-18s %-14s", r.Stage, r.Metric)
		for i, v := range r.Values {
			cell := "-"
			if !math.IsNaN(v) {
				cell = fmt.Sprintf("%.2f", v)
			}
			fmt.Fprintf(&sb, " %*s", widths[i], cell)
		}
		delta := "-"
		if r.Ratio > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.Ratio-1)*100)
		}
		fmt.Fprintf(&sb, " %9s", delta)
		if r.Note != "" {
			fmt.Fprintf(&sb, "  %s", r.Note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
