// Package channel models the over-the-air medium of the GalioT evaluation:
// additive white Gaussian noise at a calibrated SNR, per-transmitter power,
// timing offsets, carrier frequency offsets and the superposition of
// multiple simultaneous transmissions (collisions). It replaces the paper's
// physical 868 MHz testbed, following the substitution documented in
// DESIGN.md; the paper's own evaluation also stresses the system with AWGN
// at controlled SNR, so the methodology is unchanged.
package channel

import (
	"math"

	"repro/internal/dsp"
	"repro/internal/rng"
)

// Emission is one transmission placed on the channel.
type Emission struct {
	Samples []complex128 // unit-power baseband burst
	Offset  int          // start sample within the capture window
	SNRdB   float64      // per-emission SNR relative to the noise floor
	CFO     float64      // carrier frequency offset in Hz
	Phase   float64      // initial carrier phase in radians
}

// Mix renders a capture window of n samples containing all emissions over
// unit-power complex AWGN. Each emission is scaled so its average burst
// power is 10^(SNRdB/10) relative to the unit noise power, frequency-
// shifted by its CFO, rotated by its phase, and added at its offset.
//
// When noise is nil, the window is noise-free (useful for unit tests).
func Mix(n int, emissions []Emission, noise *rng.Rand, sampleRate float64) []complex128 {
	out := make([]complex128, n)
	if noise != nil {
		for i := range out {
			out[i] = noise.Complex()
		}
	}
	for _, e := range emissions {
		burst := dsp.Clone(e.Samples)
		if e.CFO != 0 || e.Phase != 0 {
			dsp.Mix(burst, e.CFO, e.Phase, sampleRate)
		}
		dsp.Scale(burst, ampFor(e.SNRdB))
		dsp.Add(out, burst, e.Offset)
	}
	return out
}

// ampFor converts an SNR in dB (vs unit noise power) to an amplitude scale
// for a unit-power burst.
func ampFor(snrDB float64) float64 {
	return math.Sqrt(dsp.FromDB(snrDB))
}

// AWGN returns n samples of unit-power circularly-symmetric complex
// Gaussian noise.
func AWGN(n int, noise *rng.Rand) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = noise.Complex()
	}
	return out
}

// Attenuate scales a signal to a target SNR in dB versus unit noise power,
// returning a new slice. The input is assumed unit power.
func Attenuate(sig []complex128, snrDB float64) []complex128 {
	return dsp.Scale(dsp.Clone(sig), ampFor(snrDB))
}
