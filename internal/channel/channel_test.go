package channel

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/rng"
)

func unitBurst(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestMixNoiseFree(t *testing.T) {
	t.Parallel()
	e := Emission{Samples: unitBurst(10), Offset: 5, SNRdB: 0}
	out := Mix(20, []Emission{e}, nil, 1e6)
	if out[4] != 0 || out[15] != 0 {
		t.Fatal("samples outside burst must be zero")
	}
	if math.Abs(real(out[5])-1) > 1e-12 {
		t.Fatalf("burst amplitude %v", out[5])
	}
}

func TestMixSNRCalibration(t *testing.T) {
	t.Parallel()
	gen := rng.New(1)
	const n = 200000
	for _, snr := range []float64{-10, 0, 10} {
		e := Emission{Samples: unitBurst(n), SNRdB: snr}
		out := Mix(n, []Emission{e}, nil, 1e6)
		got := dsp.DB(dsp.Power(out))
		if math.Abs(got-snr) > 0.01 {
			t.Fatalf("snr %v: burst power %v dB", snr, got)
		}
	}
	// noise power must be ~1 (0 dB)
	noiseOnly := Mix(n, nil, gen, 1e6)
	if p := dsp.Power(noiseOnly); math.Abs(p-1) > 0.02 {
		t.Fatalf("noise power %v", p)
	}
}

func TestMixSuperposition(t *testing.T) {
	t.Parallel()
	e1 := Emission{Samples: unitBurst(10), Offset: 0, SNRdB: 0}
	e2 := Emission{Samples: unitBurst(10), Offset: 5, SNRdB: 0}
	out := Mix(20, []Emission{e1, e2}, nil, 1e6)
	if math.Abs(real(out[7])-2) > 1e-12 {
		t.Fatalf("overlap sample %v, want 2", out[7])
	}
	if math.Abs(real(out[2])-1) > 1e-12 || math.Abs(real(out[12])-1) > 1e-12 {
		t.Fatal("non-overlap samples wrong")
	}
}

func TestMixCFOAndPhase(t *testing.T) {
	t.Parallel()
	e := Emission{Samples: unitBurst(1000), CFO: 10000, Phase: math.Pi / 2, SNRdB: 0}
	out := Mix(1000, []Emission{e}, nil, 1e6)
	// first sample rotated by phase
	if math.Abs(real(out[0])) > 1e-9 || math.Abs(imag(out[0])-1) > 1e-9 {
		t.Fatalf("initial phase: %v", out[0])
	}
	f := dsp.DominantFrequency(out, 1e6)
	if math.Abs(f-10000) > 1100 {
		t.Fatalf("cfo %v", f)
	}
}

func TestAWGNPower(t *testing.T) {
	t.Parallel()
	gen := rng.New(2)
	x := AWGN(100000, gen)
	if p := dsp.Power(x); math.Abs(p-1) > 0.02 {
		t.Fatalf("awgn power %v", p)
	}
}

func TestAttenuate(t *testing.T) {
	t.Parallel()
	x := unitBurst(1000)
	y := Attenuate(x, -20)
	if p := dsp.DB(dsp.Power(y)); math.Abs(p+20) > 0.01 {
		t.Fatalf("attenuated power %v dB", p)
	}
	// input untouched
	if real(x[0]) != 1 {
		t.Fatal("Attenuate mutated input")
	}
}
