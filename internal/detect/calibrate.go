package detect

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Calibration holds a constant-false-alarm-rate (CFAR) threshold derived
// from noise-only captures. Fixed thresholds behave differently across
// detectors (an energy ratio in dB versus a normalized correlation in
// [0, 1]); calibrating each detector to the same false-alarm budget makes
// the Fig. 3(b) comparison apples-to-apples — the methodology standard for
// detection studies.
type Calibration struct {
	Threshold float64 // metric value exceeded by noise with probability ≈ FalseRate
	FalseRate float64 // target per-capture false-alarm budget used
	Peak      float64 // largest noise-only metric value observed
}

// CalibrateThreshold measures a detector's metric on noise-only captures
// and returns the threshold that a quiet capture's maximum metric exceeds
// with probability ≈ falseRate. captures is the number of independent
// noise captures of captureLen samples to draw; more captures tighten the
// estimate.
func CalibrateThreshold(d Detector, captureLen, captures int, falseRate float64, gen *rng.Rand) Calibration {
	if captures < 2 {
		captures = 2
	}
	if captureLen < 1024 {
		captureLen = 1024
	}
	if falseRate <= 0 || falseRate >= 1 {
		falseRate = 0.05
	}
	maxima := make([]float64, 0, captures)
	peak := math.Inf(-1)
	noise := make([]complex128, captureLen) // reused; fully rewritten per capture
	for c := 0; c < captures; c++ {
		local := gen.Split(uint64(c) + 1)
		for i := range noise {
			noise[i] = local.Complex()
		}
		metric := d.Metric(noise)
		best := math.Inf(-1)
		for _, v := range metric {
			if v > best {
				best = v
			}
		}
		if !math.IsInf(best, -1) {
			maxima = append(maxima, best)
			if best > peak {
				peak = best
			}
		}
	}
	if len(maxima) == 0 {
		// The detector produced no metric (e.g. captures shorter than its
		// template): nothing can be calibrated, so return an infinite
		// threshold that never fires rather than a bogus one.
		return Calibration{Threshold: math.Inf(1), FalseRate: falseRate, Peak: peak}
	}
	sort.Float64s(maxima)
	// Threshold at the (1-falseRate) quantile of per-capture maxima.
	idx := int(math.Ceil(float64(len(maxima))*(1-falseRate))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(maxima) {
		idx = len(maxima) - 1
	}
	thr := maxima[idx]
	// Small guard above the quantile so the in-sample rate is honored.
	thr *= 1.02
	return Calibration{Threshold: thr, FalseRate: falseRate, Peak: peak}
}

// ApplyCalibration sets the detector's threshold field to the calibrated
// value. It returns false if the detector type is not recognized.
func ApplyCalibration(d Detector, cal Calibration) bool {
	switch det := d.(type) {
	case *UniversalDetector:
		det.Threshold = cal.Threshold
		return true
	case *MatchedBank:
		det.Threshold = cal.Threshold
		return true
	case *EnergyDetector:
		det.ThresholdDB = cal.Threshold
		return true
	default:
		return false
	}
}
