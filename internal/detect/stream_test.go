package detect

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/phy/xbee"
	"repro/internal/rng"
)

// streamSetup builds a universal detector stream over the three prototype
// technologies with the xbee max packet (small, keeps tests fast).
func streamSetup(t *testing.T) (*Stream, int) {
	t.Helper()
	techs := threeTechs()
	det, err := NewUniversal(techs, fs, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	maxPacket := 0
	for _, tech := range techs {
		if n := tech.MaxPacketSamples(fs); n > maxPacket {
			maxPacket = n
		}
	}
	return NewStream(det, maxPacket), maxPacket
}

func covers(segs []StreamSegment, start, length int64) bool {
	for _, s := range segs {
		if s.Start <= start && s.Start+int64(len(s.Samples)) >= start+length {
			return true
		}
	}
	return false
}

func TestStreamSinglePacketWithinCapture(t *testing.T) {
	stream, _ := streamSetup(t)
	gen := rng.New(1)
	sig, _ := xbee.Default().Modulate([]byte{1, 2, 3, 4, 5, 6, 7, 8}, fs)
	capture := channel.Mix(len(sig)+400000, []channel.Emission{{Samples: sig, Offset: 100000, SNRdB: 12}}, gen, fs)
	segs := stream.Push(capture)
	segs = append(segs, stream.Flush()...)
	if !covers(segs, 100000, int64(len(sig))) {
		t.Fatalf("packet not covered by %d segments", len(segs))
	}
}

func TestStreamPacketStraddlesBoundary(t *testing.T) {
	stream, _ := streamSetup(t)
	gen := rng.New(2)
	sig, _ := xbee.Default().Modulate([]byte{9, 8, 7, 6, 5, 4, 3, 2}, fs)
	// full scene: packet centered on the boundary between two captures
	total := 600000
	boundary := 300000
	pktStart := boundary - len(sig)/2
	scene := channel.Mix(total, []channel.Emission{{Samples: sig, Offset: pktStart, SNRdB: 12}}, gen, fs)
	var segs []StreamSegment
	segs = append(segs, stream.Push(scene[:boundary])...)
	segs = append(segs, stream.Push(scene[boundary:])...)
	segs = append(segs, stream.Flush()...)
	if !covers(segs, int64(pktStart), int64(len(sig))) {
		t.Fatalf("straddling packet not covered (segments: %d)", len(segs))
	}
}

func TestStreamNoDuplicateSamples(t *testing.T) {
	stream, _ := streamSetup(t)
	gen := rng.New(3)
	sig, _ := xbee.Default().Modulate([]byte{1, 1, 2, 2}, fs)
	scene := channel.Mix(500000, []channel.Emission{
		{Samples: sig, Offset: 50000, SNRdB: 14},
		{Samples: sig, Offset: 350000, SNRdB: 14},
	}, gen, fs)
	var segs []StreamSegment
	for off := 0; off < len(scene); off += 125000 {
		end := off + 125000
		if end > len(scene) {
			end = len(scene)
		}
		segs = append(segs, stream.Push(scene[off:end])...)
	}
	segs = append(segs, stream.Flush()...)
	// emitted sample ranges must be disjoint and ordered
	var prevEnd int64 = -1
	for _, s := range segs {
		if s.Start < prevEnd {
			t.Fatalf("segment [%d, ...) overlaps previous end %d", s.Start, prevEnd)
		}
		prevEnd = s.Start + int64(len(s.Samples))
	}
}

func TestStreamQuietStreamEmitsNothing(t *testing.T) {
	stream, _ := streamSetup(t)
	gen := rng.New(4)
	total := 0
	for i := 0; i < 4; i++ {
		total += len(stream.Push(channel.AWGN(200000, gen)))
	}
	total += len(stream.Flush())
	if total > 1 {
		t.Fatalf("noise-only stream emitted %d segments", total)
	}
}

func TestStreamTrimBoundsMemory(t *testing.T) {
	stream, maxPacket := streamSetup(t)
	gen := rng.New(5)
	for i := 0; i < 6; i++ {
		stream.Push(channel.AWGN(300000, gen))
	}
	if stream.Pending() > 2*maxPacket {
		t.Fatalf("buffer grew to %d (max packet %d)", stream.Pending(), maxPacket)
	}
}
