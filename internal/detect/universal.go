// Package detect implements the GalioT gateway's packet detection (paper
// Sec. 4): the universal preamble — a single correlation template built by
// coalescing the preambles of all supported technologies and summing one
// representative per group — together with the two baselines the paper
// compares against (energy-threshold detection and the "optimal"
// per-technology matched-filter bank), plus segment extraction for
// shipping detections to the cloud.
package detect

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
	"repro/internal/phy"
)

// Group records one coalescing class in the universal preamble: the member
// technologies whose preambles correlate strongly, and which member's
// preamble waveform was chosen to represent them.
type Group struct {
	Members        []string
	Representative string
}

// Universal is the universal-preamble template for a set of technologies.
type Universal struct {
	Template []complex128 // the summed, padded preamble template
	Groups   []Group      // coalescing structure (paper Sec. 4, step 1)
	fs       float64
}

// correlationBetween returns the peak normalized correlation between two
// preamble waveforms (the shorter slid across the longer).
func correlationBetween(a, b []complex128) float64 {
	long, short := a, b
	if len(short) > len(long) {
		long, short = short, long
	}
	m := dsp.NormalizedCorrelate(long, short)
	return dsp.MaxPeak(m).Value
}

// coalesceThreshold is the peak-correlation level above which two
// technologies' preambles are considered "common" and share a
// representative. Orthogonal modulations correlate near 1/√N; identical
// preamble structures correlate near 1.
const coalesceThreshold = 0.6

// BuildUniversal constructs the universal preamble for the given
// technologies at sample rate fs, following the paper's two steps:
// (1) coalesce technologies whose preambles are common and pick the
// shortest member as the group representative; (2) sum the representative
// waveforms, zero-padded at the end to the maximum representative length.
// The template is normalized to unit average power.
func BuildUniversal(techs []phy.Technology, fs float64) (*Universal, error) {
	if len(techs) == 0 {
		return nil, fmt.Errorf("detect: no technologies")
	}
	pres := make([][]complex128, len(techs))
	for i, t := range techs {
		pres[i] = t.Preamble(fs)
		if len(pres[i]) == 0 {
			return nil, fmt.Errorf("detect: technology %s has empty preamble", t.Name())
		}
	}
	// Union-find over the correlation graph.
	parent := make([]int, len(techs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	for i := 0; i < len(techs); i++ {
		for j := i + 1; j < len(techs); j++ {
			if correlationBetween(pres[i], pres[j]) >= coalesceThreshold {
				parent[find(j)] = find(i)
			}
		}
	}
	groupIdx := map[int][]int{}
	for i := range techs {
		r := find(i)
		groupIdx[r] = append(groupIdx[r], i)
	}
	// Collect group representatives in ascending index order (avoiding
	// map-iteration order): a union-find root is its own parent.
	roots := make([]int, 0, len(groupIdx))
	for i := range techs {
		if find(i) == i {
			roots = append(roots, i)
		}
	}

	maxLen := 0
	var groups []Group
	var reps [][]complex128
	for _, r := range roots {
		members := groupIdx[r]
		// shortest preamble represents the group
		best := members[0]
		for _, m := range members[1:] {
			if len(pres[m]) < len(pres[best]) {
				best = m
			}
		}
		g := Group{Representative: techs[best].Name()}
		for _, m := range members {
			g.Members = append(g.Members, techs[m].Name())
		}
		sort.Strings(g.Members)
		groups = append(groups, g)
		reps = append(reps, pres[best])
		if len(pres[best]) > maxLen {
			maxLen = len(pres[best])
		}
	}
	tmpl := make([]complex128, maxLen)
	for _, rep := range reps {
		dsp.Add(tmpl, rep, 0)
	}
	dsp.Normalize(tmpl)
	return &Universal{Template: tmpl, Groups: groups, fs: fs}, nil
}

// Detection is one packet-detection event.
type Detection struct {
	Index int     // sample index of the event (approximate packet start)
	Score float64 // detector metric value at the event
}

// Detector is the common interface of the three detection strategies.
type Detector interface {
	// Name identifies the strategy ("energy", "universal", "matched").
	Name() string
	// Metric returns the per-lag detection metric for a capture window.
	Metric(rx []complex128) []float64
	// Detect thresholds the metric and returns detection events.
	Detect(rx []complex128) []Detection
}

// detectWith applies threshold + non-maximum suppression shared by the
// correlation detectors.
func detectWith(metric []float64, threshold float64, minGap int) []Detection {
	peaks := dsp.FindPeaks(metric, threshold, minGap)
	out := make([]Detection, len(peaks))
	for i, p := range peaks {
		out[i] = Detection{Index: p.Index, Score: p.Value}
	}
	return out
}

// UniversalDetector correlates captures against the universal preamble.
type UniversalDetector struct {
	U         *Universal
	Threshold float64 // normalized correlation threshold
	MinGap    int     // non-maximum suppression distance in samples
	// Chunk > 0 splits the template into chunks of that many samples and
	// sums correlation magnitudes non-coherently, trading a little
	// sensitivity for robustness to carrier frequency offset. Chunk == 0
	// correlates coherently with the full template (the paper's setting:
	// AWGN only, no CFO).
	Chunk int
}

// NewUniversal builds the universal preamble for techs and wraps it in a
// detector with the given threshold.
func NewUniversal(techs []phy.Technology, fs, threshold float64) (*UniversalDetector, error) {
	u, err := BuildUniversal(techs, fs)
	if err != nil {
		return nil, err
	}
	return &UniversalDetector{U: u, Threshold: threshold, MinGap: len(u.Template)}, nil
}

// Name implements Detector.
func (d *UniversalDetector) Name() string { return "universal" }

// Metric implements Detector.
func (d *UniversalDetector) Metric(rx []complex128) []float64 {
	if d.Chunk <= 0 || d.Chunk >= len(d.U.Template) {
		return dsp.NormalizedCorrelate(rx, d.U.Template)
	}
	return chunkedMetric(rx, d.U.Template, d.Chunk)
}

// Detect implements Detector.
func (d *UniversalDetector) Detect(rx []complex128) []Detection {
	gap := d.MinGap
	if gap <= 0 {
		gap = len(d.U.Template)
	}
	return detectWith(d.Metric(rx), d.Threshold, gap)
}

// chunkedMetric computes the mean of per-chunk normalized correlation
// magnitudes, aligned to the template start (non-coherent integration).
func chunkedMetric(rx, tmpl []complex128, chunk int) []float64 {
	n := len(rx) - len(tmpl) + 1
	if n <= 0 {
		return nil
	}
	acc := make([]float64, n)
	count := 0
	for off := 0; off+chunk <= len(tmpl); off += chunk {
		m := dsp.NormalizedCorrelate(rx[off:], tmpl[off:off+chunk])
		for i := 0; i < n && i < len(m); i++ {
			acc[i] += m[i]
		}
		count++
	}
	if count == 0 {
		return dsp.NormalizedCorrelate(rx, tmpl)
	}
	inv := 1 / float64(count)
	for i := range acc {
		acc[i] *= inv
	}
	return acc
}

// MatchedBank is the paper's "optimal" baseline: one matched filter per
// technology preamble, with the per-lag metric being the maximum across
// technologies. Its cost grows linearly with the number of technologies —
// the scaling problem the universal preamble removes.
type MatchedBank struct {
	Techs     []phy.Technology
	Threshold float64
	MinGap    int
	fs        float64
	templates [][]complex128
}

// NewMatchedBank builds the per-technology matched filter bank.
func NewMatchedBank(techs []phy.Technology, fs, threshold float64) *MatchedBank {
	b := &MatchedBank{Techs: techs, Threshold: threshold, fs: fs}
	minLen := 0
	for _, t := range techs {
		p := t.Preamble(fs)
		b.templates = append(b.templates, p)
		if minLen == 0 || len(p) < minLen {
			minLen = len(p)
		}
	}
	b.MinGap = minLen
	return b
}

// Name implements Detector.
func (b *MatchedBank) Name() string { return "matched" }

// Metric implements Detector: max over technologies of the per-tech
// normalized correlation.
func (b *MatchedBank) Metric(rx []complex128) []float64 {
	var out []float64
	for _, tmpl := range b.templates {
		m := dsp.NormalizedCorrelate(rx, tmpl)
		if out == nil {
			out = m
			continue
		}
		for i := range m {
			if i < len(out) && m[i] > out[i] {
				out[i] = m[i]
			}
		}
	}
	return out
}

// Detect implements Detector.
func (b *MatchedBank) Detect(rx []complex128) []Detection {
	gap := b.MinGap
	if gap <= 0 {
		gap = 256
	}
	return detectWith(b.Metric(rx), b.Threshold, gap)
}

// EnergyDetector is the paper's weak baseline: a sliding-window energy
// threshold relative to the estimated noise floor. It fails once signals
// drop below the noise, which is exactly the regime low-power IoT inhabits.
type EnergyDetector struct {
	Window      int     // sliding window length in samples
	ThresholdDB float64 // required ratio above the noise floor, in dB
	MinGap      int
}

// NewEnergy returns an energy detector with the given window and dB
// threshold over the noise floor.
func NewEnergy(window int, thresholdDB float64) *EnergyDetector {
	if window < 8 {
		window = 8
	}
	return &EnergyDetector{Window: window, ThresholdDB: thresholdDB, MinGap: window}
}

// Name implements Detector.
func (d *EnergyDetector) Name() string { return "energy" }

// Metric implements Detector: the sliding mean power in dB relative to the
// capture's median power (a robust noise-floor estimate).
func (d *EnergyDetector) Metric(rx []complex128) []float64 {
	if len(rx) < d.Window {
		return nil
	}
	powers := dsp.AbsSq(rx)
	avg := dsp.MovingAverage(powers, d.Window)
	floor := medianOf(avg)
	if floor <= 0 {
		floor = 1e-30
	}
	out := make([]float64, len(avg))
	for i, v := range avg {
		if v <= 0 {
			out[i] = -300
			continue
		}
		out[i] = 10 * math.Log10(v/floor)
	}
	return out
}

// Detect implements Detector: rising-edge crossings of the dB threshold.
func (d *EnergyDetector) Detect(rx []complex128) []Detection {
	metric := d.Metric(rx)
	var out []Detection
	inBurst := false
	lastEnd := -d.MinGap
	for i, v := range metric {
		if !inBurst && v >= d.ThresholdDB && i-lastEnd >= d.MinGap {
			out = append(out, Detection{Index: i, Score: v})
			inBurst = true
		} else if inBurst && v < d.ThresholdDB {
			inBurst = false
			lastEnd = i
		}
	}
	return out
}

func medianOf(v []float64) float64 {
	c := make([]float64, len(v))
	copy(c, v)
	sort.Float64s(c)
	if len(c) == 0 {
		return 0
	}
	return c[len(c)/2]
}
