package detect

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func TestCalibrateThresholdControlsFalseAlarms(t *testing.T) {
	uni, err := NewUniversal(threeTechs(), fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(1)
	cal := CalibrateThreshold(uni, 1<<17, 8, 0.1, gen)
	if cal.Threshold <= 0 || cal.Threshold > 1 {
		t.Fatalf("calibrated threshold %v out of range", cal.Threshold)
	}
	if !ApplyCalibration(uni, cal) {
		t.Fatal("apply failed")
	}
	// Fresh noise captures must rarely trigger.
	falseAlarms := 0
	const trials = 10
	verify := rng.New(2)
	for i := 0; i < trials; i++ {
		noise := channel.AWGN(1<<17, verify.Split(uint64(i)))
		if len(uni.Detect(noise)) > 0 {
			falseAlarms++
		}
	}
	if falseAlarms > 3 {
		t.Fatalf("%d/%d captures false-alarmed at 10%% budget", falseAlarms, trials)
	}
	// A real packet above the noise must still be detected.
	sig, _ := threeTechs()[0].Modulate([]byte{1, 2, 3, 4}, fs)
	rx := channel.Mix(len(sig)+40000, []channel.Emission{{Samples: sig, Offset: 10000, SNRdB: 0}}, verify, fs)
	if len(uni.Detect(rx)) == 0 {
		t.Fatal("calibrated detector missed a 0 dB LoRa packet")
	}
}

func TestCalibrateEnergyDetector(t *testing.T) {
	e := NewEnergy(1024, 0)
	gen := rng.New(3)
	cal := CalibrateThreshold(e, 1<<16, 6, 0.1, gen)
	if cal.Threshold <= 0 {
		t.Fatalf("energy threshold %v", cal.Threshold)
	}
	if !ApplyCalibration(e, cal) {
		t.Fatal("apply failed")
	}
	// the calibrated threshold is in dB over the noise floor; it should be
	// small (noise fluctuations of a 1024-sample mean are well under 1 dB)
	if cal.Threshold > 3 {
		t.Fatalf("energy calibration %v dB implausibly high", cal.Threshold)
	}
}

func TestApplyCalibrationUnknownDetector(t *testing.T) {
	if ApplyCalibration(nil, Calibration{}) {
		t.Fatal("nil detector should not be calibratable")
	}
}

func TestCalibrationDefensiveDefaults(t *testing.T) {
	uni, _ := NewUniversal(threeTechs(), fs, 0)
	gen := rng.New(4)
	cal := CalibrateThreshold(uni, 0, 0, -1, gen) // all defaults kick in
	if cal.FalseRate != 0.05 {
		t.Fatalf("%+v", cal)
	}
	// 1024-sample captures are shorter than the universal template, so the
	// defensive path must return a never-firing threshold.
	if !math.IsInf(cal.Threshold, 1) {
		t.Fatalf("threshold %v, want +Inf for uncalibratable detector", cal.Threshold)
	}
	// With adequate captures the defaults calibrate normally.
	cal2 := CalibrateThreshold(uni, 1<<16, 0, -1, gen)
	if cal2.Threshold <= 0 || math.IsInf(cal2.Threshold, 1) {
		t.Fatalf("%+v", cal2)
	}
}
