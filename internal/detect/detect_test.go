package detect

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/phy/lora"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
)

const fs = 1e6

func threeTechs() []phy.Technology {
	return []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
}

func TestBuildUniversalThreeTechs(t *testing.T) {
	u, err := BuildUniversal(threeTechs(), fs)
	if err != nil {
		t.Fatal(err)
	}
	// LoRa, XBee and Z-Wave use three distinct waveform-level preambles in
	// this configuration, so three groups are expected.
	if len(u.Groups) != 3 {
		t.Fatalf("groups: %+v", u.Groups)
	}
	// Template length = longest representative (LoRa's 10.5 ksample
	// preamble), and unit power.
	loraLen := len(lora.Default().Preamble(fs))
	if len(u.Template) != loraLen {
		t.Fatalf("template length %d, want %d", len(u.Template), loraLen)
	}
	if p := dsp.Power(u.Template); math.Abs(p-1) > 1e-9 {
		t.Fatalf("template power %v", p)
	}
}

func TestBuildUniversalCoalescesIdenticalModulations(t *testing.T) {
	// Two GFSK technologies with identical air parameters must coalesce
	// into a single group represented by the shorter preamble.
	a, err := xbee.New(xbee.Config{PreambleLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := xbee.New(xbee.Config{PreambleLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	u, err := BuildUniversal([]phy.Technology{a, b}, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Groups) != 1 {
		t.Fatalf("identical GFSK preambles should coalesce: %+v", u.Groups)
	}
	if len(u.Groups[0].Members) != 2 {
		t.Fatalf("group members %v", u.Groups[0].Members)
	}
}

func TestBuildUniversalErrors(t *testing.T) {
	if _, err := BuildUniversal(nil, fs); err == nil {
		t.Fatal("empty tech list should error")
	}
}

func TestUniversalDetectsEachTechnology(t *testing.T) {
	techs := threeTechs()
	det, err := NewUniversal(techs, fs, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(1)
	for _, tech := range techs {
		sig, err := tech.Modulate([]byte{1, 2, 3, 4, 5, 6, 7, 8}, fs)
		if err != nil {
			t.Fatal(err)
		}
		n := len(sig) + 40000
		rx := channel.Mix(n, []channel.Emission{{Samples: sig, Offset: 20000, SNRdB: 10}}, gen.Split(uint64(len(sig))), fs)
		dets := det.Detect(rx)
		// A detection succeeds if an event fires close enough to the packet
		// that the shipped segment (±maxPacket around the event) covers it:
		// anywhere from shortly before the preamble to the end of the frame.
		found := false
		for _, d := range dets {
			if d.Index > 20000-2000 && d.Index < 20000+len(sig) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not detected at 10 dB: %+v", tech.Name(), dets)
		}
	}
}

func TestUniversalDetectsCollision(t *testing.T) {
	techs := threeTechs()
	det, err := NewUniversal(techs, fs, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(2)
	l, _ := techs[0].Modulate([]byte{1, 2, 3, 4}, fs)
	x, _ := techs[1].Modulate([]byte{5, 6, 7, 8}, fs)
	n := 120000
	rx := channel.Mix(n, []channel.Emission{
		{Samples: l, Offset: 10000, SNRdB: 8},
		{Samples: x, Offset: 14000, SNRdB: 8},
	}, gen, fs)
	dets := det.Detect(rx)
	// Segment-coverage semantics: both packets are handled if at least one
	// event fires inside the collision's extent — the merged shipped
	// segment (2× max packet length around each event) then contains both
	// frames for the cloud to separate.
	covered := false
	for _, d := range dets {
		if d.Index > 8000 && d.Index < 14000+len(x) {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("collision not detected: %+v", dets)
	}
	_ = l
}

func TestUniversalBelowNoiseBeatsEnergy(t *testing.T) {
	// At -10 dB SNR the LoRa preamble must still be detectable by
	// correlation while energy detection sees nothing.
	techs := threeTechs()
	uni, err := NewUniversal(techs, fs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	energy := NewEnergy(1024, 3)
	gen := rng.New(3)
	sig, _ := techs[0].Modulate([]byte{1, 2, 3, 4, 5, 6}, fs)
	rx := channel.Mix(len(sig)+60000, []channel.Emission{{Samples: sig, Offset: 30000, SNRdB: -10}}, gen, fs)

	uniHit := false
	for _, d := range uni.Detect(rx) {
		if d.Index > 28000 && d.Index < 32000 {
			uniHit = true
		}
	}
	if !uniHit {
		t.Fatal("universal preamble failed at -10 dB")
	}
	for _, d := range energy.Detect(rx) {
		if d.Index > 28000 && d.Index < 32000 {
			t.Fatal("energy detector should not see a -10 dB burst")
		}
	}
}

func TestEnergyDetectsStrongBurst(t *testing.T) {
	gen := rng.New(4)
	burst := dsp.Tone(20000, 30e3, 0, fs)
	rx := channel.Mix(100000, []channel.Emission{{Samples: burst, Offset: 40000, SNRdB: 15}}, gen, fs)
	d := NewEnergy(1024, 6)
	dets := d.Detect(rx)
	if len(dets) == 0 {
		t.Fatal("energy detector missed a 15 dB burst")
	}
	hit := false
	for _, det := range dets {
		if det.Index > 38000 && det.Index < 44000 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("detections misplaced: %+v", dets)
	}
}

func TestEnergyNoFalseAlarmsOnNoise(t *testing.T) {
	gen := rng.New(5)
	rx := channel.AWGN(200000, gen)
	d := NewEnergy(1024, 6)
	if dets := d.Detect(rx); len(dets) != 0 {
		t.Fatalf("false alarms on pure noise: %+v", dets)
	}
}

func TestMatchedBankOutperformsUniversalSlightly(t *testing.T) {
	// The matched bank's peak for a short-preamble tech must be at least as
	// high as the universal template's (the documented accuracy gap).
	techs := threeTechs()
	uni, _ := NewUniversal(techs, fs, 0.05)
	bank := NewMatchedBank(techs, fs, 0.05)
	gen := rng.New(6)
	sig, _ := techs[1].Modulate([]byte{9, 9, 9, 9}, fs) // xbee
	rx := channel.Mix(len(sig)+50000, []channel.Emission{{Samples: sig, Offset: 25000, SNRdB: 5}}, gen, fs)
	peakNear := func(metric []float64) float64 {
		best := 0.0
		for i := 23000; i < 27000 && i < len(metric); i++ {
			if metric[i] > best {
				best = metric[i]
			}
		}
		return best
	}
	up := peakNear(uni.Metric(rx))
	bp := peakNear(bank.Metric(rx))
	if bp <= up {
		t.Fatalf("matched bank peak %v should exceed universal %v for short preambles", bp, up)
	}
}

func TestChunkedMetricSurvivesCFO(t *testing.T) {
	techs := threeTechs()
	coherent, _ := NewUniversal(techs, fs, 0.05)
	chunked, _ := NewUniversal(techs, fs, 0.05)
	chunked.Chunk = 1024
	gen := rng.New(7)
	sig, _ := techs[0].Modulate([]byte{1, 2, 3, 4}, fs)
	const cfo = 2000.0
	rx := channel.Mix(len(sig)+40000, []channel.Emission{{Samples: sig, Offset: 20000, SNRdB: 10, CFO: cfo}}, gen, fs)
	peakNear := func(metric []float64) float64 {
		best := 0.0
		for i := 18000; i < 22000 && i < len(metric); i++ {
			if metric[i] > best {
				best = metric[i]
			}
		}
		return best
	}
	cp := peakNear(coherent.Metric(rx))
	kp := peakNear(chunked.Metric(rx))
	if kp <= cp {
		t.Fatalf("chunked metric %v should beat coherent %v under 2 kHz CFO", kp, cp)
	}
}

func TestDetectorNames(t *testing.T) {
	techs := threeTechs()
	uni, _ := NewUniversal(techs, fs, 0.1)
	if uni.Name() != "universal" {
		t.Fatal("universal name")
	}
	if NewMatchedBank(techs, fs, 0.1).Name() != "matched" {
		t.Fatal("matched name")
	}
	if NewEnergy(128, 3).Name() != "energy" {
		t.Fatal("energy name")
	}
}

func TestExtractSegments(t *testing.T) {
	rx := make([]complex128, 10000)
	for i := range rx {
		rx[i] = complex(float64(i), 0)
	}
	segs := ExtractSegments(rx, []Detection{{Index: 2000}, {Index: 7000}}, 1000)
	if len(segs) != 2 {
		t.Fatalf("segments %d", len(segs))
	}
	if segs[0].Start != 1500 || len(segs[0].Samples) != 2000 {
		t.Fatalf("segment 0: start %d len %d", segs[0].Start, len(segs[0].Samples))
	}
	if real(segs[0].Samples[0]) != 1500 {
		t.Fatal("segment content misaligned")
	}
}

func TestExtractSegmentsMergesOverlaps(t *testing.T) {
	rx := make([]complex128, 10000)
	segs := ExtractSegments(rx, []Detection{{Index: 2000}, {Index: 2500}}, 1000)
	if len(segs) != 1 {
		t.Fatalf("overlapping detections should merge: %d segments", len(segs))
	}
	if segs[0].Start != 1500 || len(segs[0].Samples) != 2500 {
		t.Fatalf("merged segment start %d len %d", segs[0].Start, len(segs[0].Samples))
	}
}

func TestExtractSegmentsClipsBounds(t *testing.T) {
	rx := make([]complex128, 1000)
	segs := ExtractSegments(rx, []Detection{{Index: 100}}, 4000)
	if len(segs) != 1 || segs[0].Start != 0 || len(segs[0].Samples) != 1000 {
		t.Fatalf("clip failed: %+v", segs)
	}
}

func TestShippedFraction(t *testing.T) {
	segs := []Segment{{Samples: make([]complex128, 100)}, {Samples: make([]complex128, 150)}}
	if f := ShippedFraction(segs, 1000); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("fraction %v", f)
	}
	if ShippedFraction(nil, 0) != 0 {
		t.Fatal("zero capture")
	}
}
