package detect

import "repro/internal/obs"

// StreamMetrics is the observability hook of a Stream: counters for
// samples in and segments out, a gauge tracking the sliding buffer, and an
// optional per-Push duration timer. The zero value (all nil) records
// nothing — every update is a nil-safe atomic op, so the hot path carries
// no branches or locks of its own.
type StreamMetrics struct {
	SamplesIn *obs.Counter    // detect_samples_pushed_total
	Segments  *obs.Counter    // detect_segments_emitted_total
	Pending   *obs.Gauge      // detect_stream_pending_samples
	PushTime  *obs.StageTimer // detect_push_duration_nanos (nil unless timed)
}

// NewStreamMetrics wires stream metrics onto a registry. The PushTime
// timer stays nil — durations need a clock the library must not choose
// (determinism rules); use NewStreamMetricsTimed when the caller has one.
func NewStreamMetrics(r *obs.Registry) StreamMetrics {
	return StreamMetrics{
		SamplesIn: r.Counter("detect_samples_pushed_total"),
		Segments:  r.Counter("detect_segments_emitted_total"),
		Pending:   r.Gauge("detect_stream_pending_samples"),
	}
}

// NewStreamMetricsTimed wires stream metrics plus a detect_push_duration_nanos
// histogram fed from the injected clock (commands pass time.Now().UnixNano;
// the perf harness passes its own wall clock).
func NewStreamMetricsTimed(r *obs.Registry, clock func() int64) StreamMetrics {
	m := NewStreamMetrics(r)
	m.PushTime = obs.NewStageTimer(r, "detect_push_duration_nanos", 0, clock)
	return m
}

// Stream runs a Detector continuously over an unbounded sample stream,
// handling packets that straddle capture boundaries. Captures pushed into
// the stream are concatenated in a sliding buffer; detections whose
// shipped segment could still grow (because the packet may extend past the
// buffered samples) are deferred until enough subsequent samples arrive,
// and the buffer tail is carried over so nothing is lost at the seams.
type Stream struct {
	det       Detector
	maxPacket int

	buf     []complex128
	base    int64 // absolute index of buf[0]
	emitted int64 // absolute high-water mark of emitted segment ends

	m StreamMetrics
}

// StreamSegment is a segment with an absolute start index.
type StreamSegment struct {
	Start   int64
	Samples []complex128
}

// NewStream wraps a detector for continuous operation. maxPacket is the
// largest packet airtime in samples across the supported technologies.
func NewStream(det Detector, maxPacket int) *Stream {
	if maxPacket < 1 {
		maxPacket = 1
	}
	return &Stream{det: det, maxPacket: maxPacket}
}

// Push appends a capture and returns every segment that is now complete.
// Segments whose tail is within maxPacket/2 of the buffer end are held
// back until the next Push (or Flush), because the packet they cover may
// extend into samples not yet seen.
func (s *Stream) Push(capture []complex128) []StreamSegment {
	t := s.m.PushTime.Start()
	s.buf = append(s.buf, capture...)
	s.m.SamplesIn.Add(uint64(len(capture)))
	out := s.collect(false)
	s.trim()
	s.m.Segments.Add(uint64(len(out)))
	s.m.Pending.Set(int64(len(s.buf)))
	s.m.PushTime.Stop(t)
	return out
}

// Flush emits everything still pending, including segments at the buffer
// tail, and resets the carry-over. Call when the stream ends.
func (s *Stream) Flush() []StreamSegment {
	out := s.collect(true)
	s.base += int64(len(s.buf))
	s.buf = nil
	s.m.Segments.Add(uint64(len(out)))
	s.m.Pending.Set(0)
	return out
}

// SetMetrics attaches observability counters (see NewStreamMetrics). Call
// before the stream is shared; the zero StreamMetrics detaches.
func (s *Stream) SetMetrics(m StreamMetrics) { s.m = m }

// collect runs detection over the current buffer and emits segments; when
// final is false, segments touching the last maxPacket/2 samples are
// withheld.
func (s *Stream) collect(final bool) []StreamSegment {
	if len(s.buf) == 0 {
		return nil
	}
	dets := s.det.Detect(s.buf)
	segs := ExtractSegments(s.buf, dets, s.maxPacket)
	var out []StreamSegment
	holdBack := len(s.buf) - s.maxPacket/2
	for _, seg := range segs {
		end := seg.Start + len(seg.Samples)
		if !final && end > holdBack {
			continue // may still grow; wait for more samples
		}
		absStart := s.base + int64(seg.Start)
		absEnd := s.base + int64(end)
		if absEnd <= s.emitted {
			continue // already emitted in a previous overlap window
		}
		// Clip the head if it overlaps what we already emitted, so
		// downstream consumers never see duplicate samples.
		clip := 0
		if absStart < s.emitted {
			clip = int(s.emitted - absStart)
			if clip >= len(seg.Samples) {
				continue
			}
		}
		//lint:ignore hotloopalloc each emitted segment escapes via the result and needs its own backing buffer
		samples := make([]complex128, len(seg.Samples)-clip)
		copy(samples, seg.Samples[clip:])
		out = append(out, StreamSegment{Start: absStart + int64(clip), Samples: samples})
		s.emitted = absEnd
	}
	return out
}

// trim discards buffered samples that can no longer participate in any
// future segment: everything older than 2×maxPacket from the buffer end
// stays available so a late detection can still reach back maxPacket/2 and
// a straddling packet can complete.
func (s *Stream) trim() {
	keep := 2 * s.maxPacket
	if len(s.buf) <= keep {
		return
	}
	drop := len(s.buf) - keep
	s.buf = append(s.buf[:0], s.buf[drop:]...)
	s.base += int64(drop)
}

// Pending returns the number of samples currently buffered (for tests and
// monitoring).
func (s *Stream) Pending() int { return len(s.buf) }
