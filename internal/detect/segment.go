package detect

// Segment is a slice of a capture window selected for shipping to the
// edge/cloud. Per the paper, the gateway conservatively ships samples
// covering twice the maximum packet length around each detected preamble,
// so that even a late or early detection still contains the whole frame —
// and any frames colliding with it.
type Segment struct {
	Start   int          // first sample index within the capture
	Samples []complex128 // the extracted samples
}

// ExtractSegments cuts one segment per detection: from maxPacket/2 samples
// before the event to 3·maxPacket/2 after it (total 2× the maximum packet
// length), clipped to the capture bounds. Overlapping segments are merged
// so a collision of several technologies ships as one contiguous block.
func ExtractSegments(rx []complex128, detections []Detection, maxPacket int) []Segment {
	if maxPacket < 1 {
		maxPacket = 1
	}
	type span struct{ lo, hi int }
	var spans []span
	for _, d := range detections {
		lo := d.Index - maxPacket/2
		hi := d.Index + 3*maxPacket/2
		if lo < 0 {
			lo = 0
		}
		if hi > len(rx) {
			hi = len(rx)
		}
		if hi <= lo {
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	// detections come ordered by index; merge overlaps
	var merged []span
	for _, s := range spans {
		if n := len(merged); n > 0 && s.lo <= merged[n-1].hi {
			if s.hi > merged[n-1].hi {
				merged[n-1].hi = s.hi
			}
			continue
		}
		merged = append(merged, s)
	}
	out := make([]Segment, 0, len(merged))
	for _, s := range merged {
		//lint:ignore hotloopalloc each segment escapes via the result and needs its own backing buffer
		seg := make([]complex128, s.hi-s.lo)
		copy(seg, rx[s.lo:s.hi])
		out = append(out, Segment{Start: s.lo, Samples: seg})
	}
	return out
}

// ShippedFraction returns the fraction of capture samples the segments
// cover — the backhaul saving versus streaming raw I/Q is 1 minus this.
func ShippedFraction(segments []Segment, captureLen int) float64 {
	if captureLen == 0 {
		return 0
	}
	total := 0
	for _, s := range segments {
		total += len(s.Samples)
	}
	return float64(total) / float64(captureLen)
}
