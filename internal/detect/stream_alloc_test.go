package detect

import (
	"testing"

	"repro/internal/obs"
)

// quietDetector is a Detector that never fires, isolating the Stream's own
// buffer management: with no segments to emit, a warmed-up Push must not
// allocate at all (the hotloopalloc rule's implied guarantee, tested).
type quietDetector struct{}

func (quietDetector) Name() string                       { return "quiet" }
func (quietDetector) Metric(rx []complex128) []float64   { return nil }
func (quietDetector) Detect(rx []complex128) []Detection { return nil }

// TestStreamSteadyStateAllocFree proves the detect hot loop reaches an
// allocation-free steady state: once the sliding buffer has grown to its
// working capacity (2×maxPacket carried over plus one capture), trim's
// append-into-prefix reuses the backing array and Push performs zero heap
// allocations per capture. Metrics are attached to show the nil-safe
// atomic counters are free too.
func TestStreamSteadyStateAllocFree(t *testing.T) {
	const maxPacket = 2048
	reg := obs.NewRegistry()
	s := NewStream(quietDetector{}, maxPacket)
	s.SetMetrics(NewStreamMetrics(reg))
	capture := make([]complex128, 1024)

	// Warm up: let the buffer reach its trim plateau.
	for i := 0; i < 16; i++ {
		s.Push(capture)
	}
	if got := s.Pending(); got != 2*maxPacket {
		t.Fatalf("Pending() = %d after warmup, want %d", got, 2*maxPacket)
	}

	allocs := testing.AllocsPerRun(100, func() {
		if out := s.Push(capture); out != nil {
			t.Fatal("quiet detector emitted a segment")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push allocates %.1f times per call, want 0", allocs)
	}
}
