// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus the DESIGN.md ablations. Each benchmark regenerates the
// corresponding artifact (in quick mode, for bounded runtimes) and reports
// the headline metrics alongside ns/op, so a single
//
//	go test -bench=. -benchmem
//
// run produces the full reproduction record. The same drivers with full
// trial counts are available via cmd/galiot-sim.
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/galiot"
	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/channel"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/perf"
	"repro/internal/rng"
	"repro/internal/sim"
)

var benchOpt = experiments.Options{Seed: 1, Quick: true}

// BenchmarkTable1Registry regenerates Table 1 (technology catalog).
func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1Runner(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) < 10 {
			b.Fatalf("table1 rows %d", len(tab.Rows))
		}
	}
}

// BenchmarkFig3bDetection regenerates Fig. 3(b): detection ratio vs SNR for
// the energy baseline, universal preamble and matched bank. Headline
// metrics are reported as custom benchmark units.
func BenchmarkFig3bDetection(b *testing.B) {
	var s experiments.Fig3bSeries
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunFig3b(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(s.Universal) == 5 {
		b.ReportMetric(s.Universal[0], "uni@-30..-20dB")
		b.ReportMetric(s.Energy[1], "energy@-20..-10dB")
		b.ReportMetric(s.Matched[0], "matched@-30..-20dB")
	}
}

// BenchmarkFig3cCollisions regenerates Fig. 3(c): collision-decoding
// throughput for SIC vs GalioT across SNR regimes.
func BenchmarkFig3cCollisions(b *testing.B) {
	var s experiments.Fig3cSeries
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunFig3c(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(s.GalioT) == 3 {
		var sic, cloud float64
		for i := range s.GalioT {
			sic += s.SIC[i]
			cloud += s.GalioT[i]
		}
		b.ReportMetric(cloud, "galiot-bps-total")
		b.ReportMetric(sic, "sic-bps-total")
		if sic > 0 {
			b.ReportMetric(cloud/sic, "throughput-multiple")
		}
	}
}

// BenchmarkHeadlineDetect regenerates the Sec. 1 detection headline
// (universal vs energy below -10 dB).
func BenchmarkHeadlineDetect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HeadlineDetect(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlineThroughput regenerates the Sec. 1 throughput headline
// (7.46x over SIC in the paper).
func BenchmarkHeadlineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HeadlineThroughput(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackhaul regenerates the Sec. 4/6 backhaul tradeoff table.
func BenchmarkBackhaul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Backhaul(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUniversalScaling measures the universal preamble's
// detection cost as technologies are added (DESIGN ablation 1): one
// correlation regardless of the set size, versus the matched bank's linear
// growth.
func BenchmarkAblationUniversalScaling(b *testing.B) {
	techsAll := galiot.TechnologiesWithDSSS()
	gen := rng.New(5)
	capture := channel.AWGN(1<<18, gen)
	for _, n := range []int{1, 2, 3, 4} {
		set := techsAll[:n]
		uni, err := detect.NewUniversal(set, galiot.SampleRate, 0.08)
		if err != nil {
			b.Fatal(err)
		}
		bank := detect.NewMatchedBank(set, galiot.SampleRate, 0.08)
		b.Run("universal-"+string(rune('0'+n)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = uni.Metric(capture)
			}
		})
		b.Run("matched-"+string(rune('0'+n)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = bank.Metric(capture)
			}
		})
	}
}

// BenchmarkAblationKillFilters compares SIC-only against SIC+kill-filters
// frame recovery on a fixed 3-way collision (DESIGN ablation 3).
func BenchmarkAblationKillFilters(b *testing.B) {
	techs := galiot.Technologies()
	gen := rng.New(6)
	scen, err := sim.GenCollision([]sim.CollisionSpec{
		{Tech: techs[0], SNRdB: 12, PayloadLen: 8},
		{Tech: techs[1], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.05},
		{Tech: techs[2], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.1},
	}, galiot.SampleRate, 4000, gen)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sic", func(b *testing.B) {
		recovered := 0
		for i := 0; i < b.N; i++ {
			out := sim.EvaluateDecode(scen, cancel.NewSIC(techs, galiot.SampleRate))
			recovered = out.Recovered
		}
		b.ReportMetric(float64(recovered), "frames/3")
	})
	b.Run("kill-filters", func(b *testing.B) {
		recovered := 0
		for i := 0; i < b.N; i++ {
			out := sim.EvaluateDecode(scen, cancel.NewDecoder(techs, galiot.SampleRate))
			recovered = out.Recovered
		}
		b.ReportMetric(float64(recovered), "frames/3")
	})
}

// BenchmarkGatewayProcess measures the gateway pipeline on a quarter-second
// capture (detection + segment extraction), the per-capture cost the
// Raspberry-Pi-class edge node pays.
func BenchmarkGatewayProcess(b *testing.B) {
	techs := galiot.Technologies()
	gw, err := galiot.NewGateway(galiot.GatewayConfig{Techs: techs})
	if err != nil {
		b.Fatal(err)
	}
	gen := rng.New(7)
	scen, err := sim.GenTraffic(sim.TrafficConfig{
		Techs:      techs,
		SampleRate: galiot.SampleRate,
		Duration:   1 << 18,
		MeanGap:    0.1,
		SNRMin:     8,
		SNRMax:     15,
	}, gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gw.Process(scen.Capture)
	}
}

// BenchmarkCloudDecodeCollision measures Algorithm 1 on one 2-way
// collision segment — the per-segment cost at the cloud.
func BenchmarkCloudDecodeCollision(b *testing.B) {
	techs := galiot.Technologies()
	gen := rng.New(8)
	scen, err := sim.GenCollision([]sim.CollisionSpec{
		{Tech: techs[0], SNRdB: 12, PayloadLen: 8},
		{Tech: techs[1], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.05},
	}, galiot.SampleRate, 4000, gen)
	if err != nil {
		b.Fatal(err)
	}
	dec := galiot.NewCollisionDecoder(techs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dec.Decode(scen.Capture)
	}
}

// BenchmarkBattery regenerates the Sec. 1 battery-drain experiment
// (retransmission energy with and without collision decoding).
func BenchmarkBattery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Battery(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFrontend regenerates the RTL-SDR impairment ablation
// (coherent vs chunked universal detection under tuner error).
func BenchmarkAblationFrontend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFrontend(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// buildFarmSegments renders a batch of 2-way collision segments for the
// decode-farm benchmarks.
func buildFarmSegments(b *testing.B, n int) []backhaul.Segment {
	b.Helper()
	techs := galiot.Technologies()
	base := rng.New(9)
	segs := make([]backhaul.Segment, 0, n)
	var start int64
	for i := 0; i < n; i++ {
		gen := base.Split(uint64(i))
		scen, err := sim.GenCollision([]sim.CollisionSpec{
			{Tech: techs[i%len(techs)], SNRdB: 12, PayloadLen: 8},
			{Tech: techs[(i+1)%len(techs)], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.1},
		}, galiot.SampleRate, 3000, gen)
		if err != nil {
			b.Fatal(err)
		}
		segs = append(segs, backhaul.Segment{Start: start, SampleRate: galiot.SampleRate, Samples: scen.Capture})
		start += int64(len(scen.Capture))
	}
	return segs
}

// BenchmarkFarmThroughput compares serial segment decoding against the
// decode farm on the same batch. On a multi-core host the 4-worker farm
// clears a multiple of the serial rate (the acceptance bar is 2x with 4
// workers); on one core the two are equivalent, since the farm adds
// scheduling but no parallel silicon. segments/s is the headline metric.
func BenchmarkFarmThroughput(b *testing.B) {
	const batch = 8
	segs := buildFarmSegments(b, batch)
	b.Run("serial", func(b *testing.B) {
		svc := galiot.NewCloud()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, seg := range segs {
				svc.DecodeSegment(seg)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "segments/s")
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("farm-%d", workers), func(b *testing.B) {
			svc := galiot.NewCloud()
			f := svc.StartFarm(galiot.FarmConfig{Workers: workers, QueueDepth: batch})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, seg := range segs {
					wg.Add(1)
					if err := f.Submit(context.Background(), seg, func(farm.Result) { wg.Done() }); err != nil {
						b.Fatal(err)
					}
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "segments/s")
			svc.Close()
		})
	}
}

// BenchmarkPerfStages bridges the galiot-bench harness into `go test
// -bench`: each hot pipeline stage runs through internal/perf's seeded
// workloads and reports the harness's own ns/sample and allocs/op, so
// benchstat and BENCH.json describe the same measurements. b.N is ignored
// on purpose — the harness uses fixed iteration counts so its workload
// identity (and hence its regression baselines) never depends on host
// speed.
func BenchmarkPerfStages(b *testing.B) {
	for _, stage := range perf.StageNames() {
		b.Run(stage, func(b *testing.B) {
			rep, err := perf.Run(perf.Options{
				Seed:   1,
				Quick:  true,
				Clock:  func() int64 { return time.Now().UnixNano() },
				Stages: []string{stage},
			})
			if err != nil {
				b.Fatal(err)
			}
			s := rep.Stages[0]
			b.ReportMetric(s.NsPerSample, "ns/sample")
			b.ReportMetric(s.SamplesPerSec/1e6, "Msamples/s")
			if s.AllocsPerOp >= 0 {
				b.ReportMetric(s.AllocsPerOp, "allocs/op")
			}
		})
	}
}
