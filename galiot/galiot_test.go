package galiot

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/rng"
)

func TestTechnologies(t *testing.T) {
	ts := Technologies()
	if len(ts) != 3 {
		t.Fatalf("%d technologies", len(ts))
	}
	names := map[string]bool{}
	for _, tech := range ts {
		names[tech.Name()] = true
	}
	for _, want := range []string{"lora", "xbee", "zwave"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
	if len(TechnologiesWithDSSS()) != 4 {
		t.Fatal("DSSS set")
	}
	all := TechnologiesAll()
	if len(all) != 6 {
		t.Fatal("full set")
	}
	classes := map[string]bool{}
	for _, tech := range all {
		classes[tech.Class().String()] = true
	}
	for _, want := range []string{"CSS", "FSK", "DSSS", "PSK", "OFDM"} {
		if !classes[want] {
			t.Fatalf("class %s not covered by TechnologiesAll", want)
		}
	}
}

func TestRegisterDefaultsIdempotent(t *testing.T) {
	RegisterDefaults()
	RegisterDefaults() // must not panic on duplicate registration
	for _, name := range []string{"lora", "xbee", "zwave", "oqpsk", "dbpsk", "halow"} {
		if _, ok := phy.Lookup(name); !ok {
			t.Fatalf("%s not registered", name)
		}
	}
}

func TestNewGatewayDefaults(t *testing.T) {
	g, err := NewGateway(GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g.SampleRate() != SampleRate {
		t.Fatal("sample rate")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	techs := Technologies()
	dec := NewCollisionDecoder(techs)
	gen := rng.New(77)
	payload := []byte("facade")
	sig, err := techs[1].Modulate(payload, SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	rx := channel.Mix(len(sig)+20000, []channel.Emission{{Samples: sig, Offset: 8000, SNRdB: 15}}, gen, SampleRate)
	frames, _ := dec.Decode(rx)
	if len(frames) != 1 || string(frames[0].Payload) != "facade" {
		t.Fatalf("frames %+v", frames)
	}
}

func TestDetectorConstructors(t *testing.T) {
	if _, err := NewUniversalDetector(Technologies(), 0.08); err != nil {
		t.Fatal(err)
	}
	if NewSICBaseline(Technologies()).UseKillFilters {
		t.Fatal("SIC baseline must not use kill filters")
	}
	if !NewCollisionDecoder(Technologies()).UseKillFilters {
		t.Fatal("collision decoder must use kill filters")
	}
	if DefaultFrontend().SampleRate() != SampleRate || IdealFrontend().SampleRate() != SampleRate {
		t.Fatal("frontends")
	}
}
