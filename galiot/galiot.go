// Package galiot is the public API of the GalioT reproduction — a
// cloud-assisted software-defined-radio gateway for low-power IoT that
// detects packets of many radio technologies (including cross-technology
// collisions) with a single universal-preamble correlation and decodes the
// collisions in the cloud with modulation-class "kill" filters wrapped
// around successive interference cancellation.
//
// The package re-exports the pieces a downstream application composes:
//
//   - Technologies: ready-made PHYs (LoRa CSS, XBee GFSK, Z-Wave BFSK,
//     802.15.4-style O-QPSK DSSS) behind the Technology interface;
//   - NewGateway: front-end → detection → edge decode → backhaul pipeline;
//   - NewCloud: the Algorithm-1 collision decoder as a service;
//   - NewUniversalDetector / NewCollisionDecoder: the two core algorithms
//     standalone, for embedding in other systems.
//
// See the examples/ directory for runnable end-to-end programs and
// EXPERIMENTS.md for the paper-reproduction harness.
package galiot

import (
	"net/http"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/cloud"
	"repro/internal/detect"
	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/fleetsim"
	"repro/internal/frontend"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/phy/dbpsk"
	"repro/internal/phy/lora"
	"repro/internal/phy/ofdm"
	"repro/internal/phy/oqpsk"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/resilience"
	"repro/internal/resilience/wal"
)

// Re-exported core types. The underlying packages carry the full
// documentation; these aliases make the public surface importable from a
// single place.
type (
	// Technology is a complete PHY implementation (modulator, demodulator,
	// preamble, catalog metadata).
	Technology = phy.Technology
	// Frame is a decoded PHY frame with receiver-side estimates.
	Frame = phy.Frame
	// Detector is a packet-detection strategy (energy, universal, matched).
	Detector = detect.Detector
	// Detection is one packet-detection event.
	Detection = detect.Detection
	// Segment is an extracted I/Q block around a detection.
	Segment = detect.Segment
	// Gateway is the GalioT gateway runtime.
	Gateway = gateway.Gateway
	// GatewayConfig assembles a Gateway.
	GatewayConfig = gateway.Config
	// GatewayResult is the outcome of processing one capture.
	GatewayResult = gateway.Result
	// GatewayResilient configures the reconnecting backhaul client
	// (Gateway.RunResilient): redial policy, segment spool, deadlines.
	GatewayResilient = gateway.Resilient
	// RetryPolicy bounds and paces reconnect attempts with deterministic
	// jittered exponential backoff.
	RetryPolicy = resilience.RetryPolicy
	// WALSyncPolicy selects when the crash-durable spool's write-ahead log
	// fsyncs (GatewayResilient.WALSync).
	WALSyncPolicy = wal.SyncPolicy
	// Cloud is the collision-decoding service.
	Cloud = cloud.Service
	// CloudServer is a TCP front for the Cloud service.
	CloudServer = cloud.Server
	// Farm is the cloud's concurrent decode farm (worker pool + admission
	// control); attach one to a Cloud with its StartFarm method.
	Farm = farm.Farm
	// FarmConfig sizes a Farm.
	FarmConfig = farm.Config
	// FarmStats is a point-in-time snapshot of a Farm.
	FarmStats = farm.Stats
	// Fleet is the sharded decode plane's routing tier: N shared-nothing
	// Cloud shards behind one accept loop, sessions routed by a consistent
	// hash of (gateway, epoch).
	Fleet = fleet.Front
	// FleetConfig sizes a Fleet (shard count, per-shard farm, ring).
	FleetConfig = fleet.Config
	// FleetShardStats is one shard's point-in-time view from Fleet.Stats.
	FleetShardStats = fleet.ShardStats
	// FleetSimConfig parameterizes an in-process fleet simulation
	// (internal/fleetsim): real gateways over loopback TCP against a
	// sharded plane.
	FleetSimConfig = fleetsim.Config
	// FleetSimWorkload is a pre-rendered deterministic fleet workload.
	FleetSimWorkload = fleetsim.Workload
	// FleetSimReport is the structured outcome of one fleet simulation.
	FleetSimReport = fleetsim.Report
	// CollisionDecoder runs Algorithm 1 (SIC + kill filters).
	CollisionDecoder = cancel.Decoder
	// DecodeStats aggregates what a decode invocation did.
	DecodeStats = cancel.Stats
	// Receiver models the RTL-SDR front-end impairments.
	Receiver = frontend.Receiver
	// FrameReport is a decoded frame on the backhaul wire.
	FrameReport = backhaul.FrameReport
	// FramesReport carries decode results for one segment.
	FramesReport = backhaul.FramesReport
	// ObsRegistry is the metrics registry shared by gateway, farm and cloud;
	// pass one in GatewayConfig.Obs / Cloud.UseObs to aggregate the pipeline
	// onto a single snapshot.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time JSON-marshalable copy of a registry.
	ObsSnapshot = obs.Snapshot
	// ObsTracer records per-segment spans (detect → ship → decode stages).
	ObsTracer = obs.Tracer
	// ObsServer exposes /metrics, /trace/recent, /events/recent, /healthz,
	// /readyz, /fleet/metrics and pprof over HTTP.
	ObsServer = obs.Server
	// ObsJournal is the deterministic ring-buffered event journal behind
	// /events/recent; gateway, cloud server and fleet components record
	// their state transitions onto one.
	ObsJournal = obs.Journal
	// ObsEvent is one recorded (possibly coalesced) journal entry.
	ObsEvent = obs.Event
	// ObsHealth is the component-health registry behind /healthz and
	// /readyz.
	ObsHealth = obs.Health
	// ObsHealthSnapshot is one aggregate health verdict (the /healthz and
	// /readyz body).
	ObsHealthSnapshot = obs.HealthSnapshot
	// ObsCheckStatus is one evaluated health check in a snapshot.
	ObsCheckStatus = obs.CheckStatus
	// ObsCheckResult is one health check's verdict (what a CheckFunc
	// returns; see obs.Healthy / obs.Unhealthy for constructors).
	ObsCheckResult = obs.CheckResult
	// ObsTraceStore assembles finished spans from any number of tracers
	// (local or remote processes) into per-trace trees with tail-based
	// retention; serve it through ObsServer at /trace/tree and
	// /trace/slowest.
	ObsTraceStore = obs.TraceStore
	// ObsTraceStoreConfig sizes an ObsTraceStore (capacity, sampling,
	// slow-trace threshold).
	ObsTraceStoreConfig = obs.TraceStoreConfig
	// ObsTraceTree is one assembled trace: its spans, duration, orphan
	// count and critical path.
	ObsTraceTree = obs.TraceTree
	// ObsSpanSnapshot is one finished span as recorded by a tracer.
	ObsSpanSnapshot = obs.SpanSnapshot
	// ObsFleet scrapes N metric endpoints or registries and merges them
	// into a fleet-wide rollup (served at /fleet/metrics).
	ObsFleet = obs.Fleet
	// ObsFleetSnapshot is one point-in-time fleet rollup: exact counter
	// sums, labeled gauge extremes, merged histogram sketches.
	ObsFleetSnapshot = obs.FleetSnapshot
	// ObsTarget is one named scrape source for an ObsFleet.
	ObsTarget = obs.Target
)

// SampleRate is the paper's gateway sample rate: the RTL-SDR configured
// for a 1 MHz capture bandwidth at 868 MHz.
const SampleRate = 1e6

// WAL fsync policies for GatewayResilient.WALSync.
const (
	// WALSyncBatched fsyncs every few appends and on rotation/close —
	// the default balance of durability and throughput.
	WALSyncBatched = wal.SyncBatched
	// WALSyncRecord fsyncs after every append: no loss window, one disk
	// round-trip per segment.
	WALSyncRecord = wal.SyncEachRecord
	// WALSyncOff never fsyncs during appends; a power loss can cost the
	// whole page cache, but a process crash costs nothing.
	WALSyncOff = wal.SyncNone
)

// Technologies returns fresh default instances of the three prototype
// technologies evaluated in the paper — LoRa (CSS), XBee (GFSK) and Z-Wave
// (BFSK) — in that order.
func Technologies() []Technology {
	return []Technology{lora.Default(), xbee.Default(), zwave.Default()}
}

// TechnologiesWithDSSS returns the prototype set plus the 802.15.4-style
// O-QPSK DSSS PHY (the Thread/WirelessHART modulation class from Table 1),
// which exercises the KILL-CODES filter.
func TechnologiesWithDSSS() []Technology {
	return append(Technologies(), oqpsk.Default())
}

// TechnologiesAll returns every implemented PHY that runs at the gateway's
// 1 MHz capture rate: the three prototypes plus O-QPSK DSSS, the
// SigFox-class D-BPSK ultra-narrowband PHY and the WiFi HaLow-class
// 1 MHz-mode OFDM PHY — at least one technology per modulation class in
// the paper's Sec. 5 taxonomy. The BLE LE 1M PHY (repro/internal/phy/ble)
// is also implemented but needs a ≥5 MHz capture, so it is not part of
// this set.
func TechnologiesAll() []Technology {
	return append(TechnologiesWithDSSS(), dbpsk.Default(), ofdm.Default())
}

var registerOnce sync.Once

// RegisterDefaults adds the default technology instances to the global
// phy registry (used by name-based lookup in tools). Safe to call multiple
// times.
func RegisterDefaults() {
	registerOnce.Do(func() {
		for _, t := range TechnologiesAll() {
			phy.Register(t)
		}
	})
}

// NewGateway builds a gateway over the given technologies with the paper's
// defaults: an RTL-SDR-class front-end model and the universal-preamble
// detector. Pass a zero GatewayConfig except for the fields you want to
// override.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Techs) == 0 {
		cfg.Techs = Technologies()
	}
	if cfg.Frontend == nil {
		cfg.Frontend = frontend.Ideal(SampleRate)
	}
	return gateway.New(cfg)
}

// NewCloud builds the cloud decoding service over the given technologies
// (default: the prototype set).
func NewCloud(techs ...Technology) *Cloud {
	if len(techs) == 0 {
		techs = Technologies()
	}
	return cloud.NewService(techs)
}

// NewFleet builds a sharded decode plane (default: the prototype
// technology set). Plug its HandleConn into a CloudServer — or call its
// NewServer method — to accept gateway sessions, and Close it to drain
// the shard farms.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Techs) == 0 {
		cfg.Techs = Technologies()
	}
	return fleet.New(cfg)
}

// GenFleetWorkload renders a deterministic fleet workload from
// cfg.Seed; reuse it across RunFleetSim calls to compare shard counts on
// byte-identical captures.
func GenFleetWorkload(cfg FleetSimConfig) (*FleetSimWorkload, error) {
	return fleetsim.GenWorkload(cfg)
}

// RunFleetSim executes one in-process fleet simulation: real resilient
// gateways, real wire protocol, a sharded decode plane, one Report.
func RunFleetSim(cfg FleetSimConfig, wl *FleetSimWorkload) (*FleetSimReport, error) {
	return fleetsim.Run(cfg, wl)
}

// NewUniversalDetector builds the universal-preamble detector of Sec. 4
// over the given technologies at the gateway sample rate.
func NewUniversalDetector(techs []Technology, threshold float64) (*detect.UniversalDetector, error) {
	return detect.NewUniversal(techs, SampleRate, threshold)
}

// NewCollisionDecoder builds the Algorithm-1 collision decoder of Sec. 5.
func NewCollisionDecoder(techs []Technology) *CollisionDecoder {
	return cancel.NewDecoder(techs, SampleRate)
}

// NewSICBaseline builds the strict power-ordered SIC baseline the paper
// compares against.
func NewSICBaseline(techs []Technology) *CollisionDecoder {
	return cancel.NewSIC(techs, SampleRate)
}

// NewObsRegistry builds an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsTracer builds a segment tracer keeping the most recent ringSize
// spans (0 = default). Callers running in real time should SetClock it to a
// wall-clock nanosecond source; the default clock is a deterministic step
// counter suited to simulations and tests.
func NewObsTracer(ringSize int) *ObsTracer { return obs.NewTracer(ringSize) }

// NewObsTraceStore builds a trace-assembly store; SetSink the tracers that
// should feed it with store.Ingest. A zero config gets the documented
// defaults (512 traces retained, 1-in-16 head sampling plus every
// anomalous trace).
func NewObsTraceStore(cfg ObsTraceStoreConfig) *ObsTraceStore {
	return obs.NewTraceStore(cfg)
}

// ParseTraceID parses a trace ID in decimal or 0x-hex form (the formats
// the /trace/tree route and galiot-trace accept).
func ParseTraceID(s string) (uint64, error) { return obs.ParseTraceID(s) }

// NewObsJournal builds an event journal keeping the most recent ringSize
// events (0 = default). Like the tracer, its default clock is a
// deterministic step counter; SetClock it for wall-clock timestamps.
func NewObsJournal(ringSize int) *ObsJournal { return obs.NewJournal(ringSize) }

// NewObsHealth builds an empty component-health registry.
func NewObsHealth() *ObsHealth { return obs.NewHealth() }

// NewObsFleet builds a fleet aggregator over the given scrape targets.
func NewObsFleet(targets ...ObsTarget) *ObsFleet { return obs.NewFleet(targets...) }

// ObsRegistryTarget makes an in-process registry a fleet scrape target.
func ObsRegistryTarget(name string, r *ObsRegistry) ObsTarget {
	return obs.RegistryTarget(name, r)
}

// ObsHTTPTarget makes a remote /metrics endpoint a fleet scrape target
// (nil client uses a 5 s-timeout default).
func ObsHTTPTarget(name, url string, client *http.Client) ObsTarget {
	return obs.HTTPTarget(name, url, client)
}

// DefaultFrontend returns the paper's prototype front-end model: 1 MHz,
// 8-bit quantization, DC offset, IQ imbalance, 500 Hz tuner error.
func DefaultFrontend() *Receiver { return frontend.Default() }

// IdealFrontend returns a distortion-free front-end for algorithm studies.
func IdealFrontend() *Receiver { return frontend.Ideal(SampleRate) }
