// Command galiot-bench runs the GalioT performance harness: deterministic
// seeded workloads through every pipeline stage, a structured BENCH.json
// report, and (with -baseline) a noise-aware regression verdict with a
// non-zero exit when a hot-path stage regressed. See DESIGN.md §12.
//
// Usage:
//
//	galiot-bench -quick -out BENCH.json                    # measure
//	galiot-bench -quick -baseline BENCH_BASELINE.json      # measure + gate
//	galiot-bench -compare-only -out BENCH.json -baseline B # re-gate, no run
//	galiot-bench -trend BENCH1.json BENCH2.json BENCH3.json # cross-run trend
//	galiot-bench -list                                     # stage names
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/perf"
)

func main() {
	var (
		quick       = flag.Bool("quick", false, "CI-sized workloads and iteration counts (~seconds, not minutes)")
		seed        = flag.Uint64("seed", 1, "root seed for every workload generator")
		out         = flag.String("out", "", "write the report JSON here ('-' or empty = stdout)")
		baseline    = flag.String("baseline", "", "compare against this baseline report; exit 1 on hot-path regressions")
		threshold   = flag.Float64("threshold", 0, "relative regression threshold (0 = default 0.35; CI uses 2.0 across hardware)")
		profileDir  = flag.String("profile-dir", "", "write per-stage CPU and heap profiles into this directory")
		stages      = flag.String("stages", "", "comma-separated stage filter (default: all)")
		list        = flag.Bool("list", false, "print stage names and exit")
		compareOnly = flag.Bool("compare-only", false, "skip measuring; load -out as the current report and compare against -baseline")
		trend       = flag.Bool("trend", false, "skip measuring; render a cross-run trend table from the report files given as arguments, oldest first")
	)
	flag.Parse()

	if *trend {
		paths := flag.Args()
		if len(paths) < 2 {
			fatalf("-trend needs at least two report files, oldest first")
		}
		labels := make([]string, len(paths))
		reports := make([]*perf.Report, len(paths))
		for i, p := range paths {
			r, err := loadReport(p)
			if err != nil {
				fatalf("load report: %v", err)
			}
			labels[i] = filepath.Base(p)
			reports[i] = r
		}
		tr, err := perf.TrendOf(labels, reports)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(tr.Render())
		return
	}

	if *list {
		for _, n := range perf.StageNames() {
			fmt.Println(n)
		}
		return
	}

	var rep *perf.Report
	if *compareOnly {
		if *out == "" || *out == "-" {
			fatalf("-compare-only needs -out pointing at an existing report file")
		}
		var err error
		rep, err = loadReport(*out)
		if err != nil {
			fatalf("load current report: %v", err)
		}
	} else {
		opts := perf.Options{
			Seed:       *seed,
			Quick:      *quick,
			Clock:      func() int64 { return time.Now().UnixNano() },
			ProfileDir: *profileDir,
		}
		if *stages != "" {
			for _, s := range strings.Split(*stages, ",") {
				if s = strings.TrimSpace(s); s != "" {
					opts.Stages = append(opts.Stages, s)
				}
			}
		}
		var err error
		rep, err = perf.Run(opts)
		if err != nil {
			fatalf("%v", err)
		}
		if err := writeReport(*out, rep); err != nil {
			fatalf("write report: %v", err)
		}
	}

	if *baseline == "" {
		return
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fatalf("load baseline: %v", err)
	}
	cmp, err := perf.Compare(base, rep, perf.CompareOptions{RelThreshold: *threshold})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprint(os.Stderr, cmp.Render())
	if regs := cmp.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d hot-path regression(s)\n", len(regs))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "OK: no hot-path regressions")
}

func loadReport(path string) (*perf.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r perf.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeReport(path string, r *perf.Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "galiot-bench: "+format+"\n", args...)
	os.Exit(1)
}
