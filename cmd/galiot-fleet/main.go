// Command galiot-fleet runs the in-process fleet simulator: a seeded
// fleet of real gateways — full detection pipeline, real backhaul wire
// protocol, reconnecting clients — against a sharded decode plane over
// loopback TCP, reduced to one structured JSON report (per-shard
// throughput, admission-queue counters, e2e decode latency quantiles).
//
// The command exits non-zero if the run violates the plane's invariants:
// any gateway session error, any segment decoded on more than one shard,
// any admission-queue reject, or sessions still registered after the
// fleet disconnected. That makes it a self-checking soak for CI:
//
//	galiot-fleet -quick -out FLEET.json
//
// Full runs size the fleet explicitly:
//
//	galiot-fleet -gateways 200 -shards 4 -workers 2 -seed 7 -out FLEET.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/galiot"
)

func main() {
	var (
		gateways  = flag.Int("gateways", 32, "fleet size (concurrent gateway sessions)")
		captures  = flag.Int("captures", 1, "captures per gateway")
		samples   = flag.Int("samples", 1<<15, "samples per capture")
		gapMs     = flag.Float64("gap", 5, "mean idle gap between transmissions within a capture (ms)")
		shards    = flag.Int("shards", 2, "decode-plane shard count")
		workers   = flag.Int("workers", 2, "decode-farm workers per shard")
		queue     = flag.Int("queue", 256, "admission-queue depth per shard")
		window    = flag.Int("window", 0, "pin every gateway's shipping window (0 = auto-size from the capacity hint)")
		seed      = flag.Uint64("seed", 1, "workload and retry-jitter seed")
		spool     = flag.Bool("spool-first", false, "outage-recovery drain: spool the whole fleet before the plane accepts sessions")
		quick     = flag.Bool("quick", false, "CI preset: 100 gateways, 2 shards, 16k-sample captures, seed 1")
		out       = flag.String("out", "", "write the JSON report to this file (default stdout)")
		quiet     = flag.Bool("quiet", false, "suppress plane diagnostics")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /events/recent, /healthz, /readyz and /fleet/metrics on this address during the run (empty = off)")
		obsLinger = flag.Duration("obs-linger", 0, "keep the observability endpoints up this long after the run so smoke tests can scrape the final state (SIGINT ends the linger early)")
		rollupOut = flag.String("rollup-out", "", "write the fleet metrics rollup (the report's rollup field) to this file as JSON")
		traceOut  = flag.String("trace-out", "", "trace the run end to end and write the assembled trace trees to this file as JSON (galiot-trace reads it)")
	)
	flag.Parse()

	journal := galiot.NewObsJournal(0)
	journal.SetClock(func() int64 { return time.Now().UnixNano() })
	health := galiot.NewObsHealth()
	// The aggregator starts empty; fleetsim feeds it the plane's targets
	// through OnPlane once the shards are up, so /fleet/metrics goes from
	// an empty rollup to the live per-shard view without an obs-server
	// restart.
	fl := galiot.NewObsFleet()

	// Tracing is opt-in via -trace-out. The store is sized so a CI-scale
	// run never evicts and keeps every trace (SampleEvery 1): the artifact
	// is the complete record, and galiot-trace -assert gates on it.
	var traces *galiot.ObsTraceStore
	if *traceOut != "" {
		traces = galiot.NewObsTraceStore(galiot.ObsTraceStoreConfig{
			Capacity:    1 << 16,
			SampleEvery: 1,
		})
	}

	cfg := galiot.FleetSimConfig{
		Gateways:       *gateways,
		Captures:       *captures,
		CaptureSamples: *samples,
		MeanGapMs:      *gapMs,
		Shards:         *shards,
		Workers:        *workers,
		QueueDepth:     *queue,
		Window:         *window,
		Seed:           *seed,
		SpoolFirst:     *spool,
		Clock:          func() int64 { return time.Now().UnixNano() },
		Journal:        journal,
		Health:         health,
		OnPlane: func(targets []galiot.ObsTarget) {
			for _, t := range targets {
				fl.Add(t)
			}
		},
		Traces: traces,
	}
	if *quick {
		cfg.Gateways = 100
		cfg.Captures = 1
		cfg.CaptureSamples = 1 << 14
		cfg.Shards = 2
		cfg.Seed = 1
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	var obsSrv *galiot.ObsServer
	if *obsAddr != "" {
		obsSrv = &galiot.ObsServer{Journal: journal, Health: health, Fleet: fl, Traces: traces}
		if err := obsSrv.Start(*obsAddr); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-fleet: obs server:", err)
			os.Exit(1)
		}
		defer func() {
			if err := obsSrv.Close(); err != nil {
				log.Printf("obs server close: %v", err)
			}
		}()
		log.Printf("observability endpoints on http://%s/fleet/metrics", obsSrv.Addr())
	}

	wl, err := galiot.GenFleetWorkload(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
		os.Exit(1)
	}
	log.Printf("workload: %d gateways x %d captures (%d samples each), %d ground-truth packets, seed %d",
		cfg.Gateways, cfg.Captures, cfg.CaptureSamples, wl.Packets(), cfg.Seed)
	log.Printf("plane: %d shards x %d workers (queue %d per shard)", cfg.Shards, cfg.Workers, cfg.QueueDepth)

	rep, err := galiot.RunFleetSim(cfg, wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
			os.Exit(1)
		}
		log.Printf("report written to %s", *out)
	} else {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
			os.Exit(1)
		}
	}
	if *rollupOut != "" {
		rdata, err := json.MarshalIndent(rep.Rollup, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*rollupOut, append(rdata, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
			os.Exit(1)
		}
		log.Printf("fleet rollup written to %s", *rollupOut)
	}
	if traces != nil {
		tdata, err := json.MarshalIndent(traces.Trees(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, append(tdata, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-fleet:", err)
			os.Exit(1)
		}
		if rep.Trace != nil {
			log.Printf("traces written to %s: %d traces (%d spans), %d stitched gateway+cloud, %d replayed, %d orphan spans",
				*traceOut, rep.Trace.Traces, rep.Trace.Spans, rep.Trace.Stitched, rep.Trace.Replayed, rep.Trace.Orphans)
		}
	}

	log.Printf("decoded %d segments (%d frames) in %.0f ms: throughput %.1f segs/s, capacity %.1f segs/s, latency p50=%.0fms p95=%.0fms",
		rep.SegmentsDecoded, rep.FramesReported, rep.DurationMillis, rep.Throughput, rep.Capacity, rep.Latency.P50, rep.Latency.P95)
	for _, sh := range rep.PerShard {
		log.Printf("shard %d: %d sessions, %d decoded (%.1f segs/s), %d admitted, %d rejected",
			sh.Shard, sh.Sessions, sh.Decoded, sh.Throughput, sh.Admitted, sh.Rejected)
	}

	// Invariant gate: a fleet run that lost sessions, duplicated decodes
	// across shards, hit queue collapse or leaked sessions is a failure
	// regardless of its throughput numbers.
	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "galiot-fleet: FAIL: "+format+"\n", args...)
	}
	if rep.GatewayErrors != 0 {
		fail("%d gateway sessions errored", rep.GatewayErrors)
	}
	if rep.SegmentsDecoded == 0 {
		fail("no segments decoded")
	}
	if rep.Duplicates != 0 {
		fail("%d segments decoded on more than one shard", rep.Duplicates)
	}
	if rep.Rejected != 0 {
		fail("%d admission-queue rejects", rep.Rejected)
	}
	if rep.FinalSessions != 0 {
		fail("%d sessions still registered after the fleet exited", rep.FinalSessions)
	}
	if rep.Trace != nil {
		// Trace continuity is an invariant too: every span's parent must
		// have been assembled into the same trace, and the wire-propagated
		// context must have stitched at least one gateway+cloud pair.
		if rep.Trace.Orphans != 0 {
			fail("%d orphan spans (parent never assembled)", rep.Trace.Orphans)
		}
		if rep.Trace.Stitched == 0 {
			fail("no trace carries both gateway and cloud spans")
		}
	}
	if failed {
		os.Exit(1)
	}
	log.Printf("invariants hold: no session errors, no cross-shard duplicates, no rejects, no leaked sessions")

	// Optional linger: hold the observability endpoints open after the run
	// so an external smoke test can scrape the final /fleet/metrics and
	// /events/recent. An interrupt ends the linger early.
	if obsSrv != nil && *obsLinger > 0 {
		log.Printf("lingering %v for observability scrapes (interrupt to finish early)", *obsLinger)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		select {
		case <-time.After(*obsLinger):
		case <-sig:
		}
	}
}
