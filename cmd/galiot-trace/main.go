// Command galiot-trace renders assembled distributed traces: the span
// trees the obs.TraceStore stitches together from gateway and cloud
// processes via the wire-propagated trace context (backhaul v3).
//
// It reads traces either from a live observability endpoint (-addr, the
// /trace/slowest and /trace/tree routes an ObsServer with a Traces store
// serves) or from a captured artifact (-in TRACE.json, as written by
// galiot-fleet -trace-out). Output is an indented span tree per trace with
// per-stage durations and the critical path, or raw JSON with -json.
//
// With -assert the command is a CI gate: it exits non-zero unless the
// input holds at least one trace, zero orphan spans (every span's parent
// was assembled into the same tree), and at least one trace stitched
// across both processes (gateway-side and cloud-side spans sharing one
// trace ID).
//
//	galiot-trace -in TRACE.json                 # slowest 10, rendered
//	galiot-trace -addr 127.0.0.1:8077 -slowest 5
//	galiot-trace -in TRACE.json -id 0xe302...   # one trace by ID
//	galiot-trace -in TRACE.json -assert         # CI continuity gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/galiot"
)

func main() {
	var (
		in      = flag.String("in", "", "read trace trees from this JSON file (galiot-fleet -trace-out artifact)")
		addr    = flag.String("addr", "", "read traces from a live observability endpoint (host:port serving /trace/slowest)")
		id      = flag.String("id", "", "show only this trace (decimal or 0x hex trace ID)")
		slowest = flag.Int("slowest", 10, "with -addr, fetch the N slowest traces; with -in, show the N slowest (0 = all)")
		asJSON  = flag.Bool("json", false, "emit the selected trees as JSON instead of rendering them")
		doAss   = flag.Bool("assert", false, "continuity gate: exit non-zero unless traces exist, zero spans are orphaned, and at least one trace spans both gateway and cloud")
	)
	flag.Parse()

	if (*in == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "galiot-trace: exactly one of -in or -addr is required")
		os.Exit(2)
	}

	// The gate must judge the whole artifact, not the slowest-N view a
	// human would page through (an orphan in trace #11 still fails CI).
	sl := *slowest
	if *doAss && *in != "" {
		sl = 0
	}
	trees, err := load(*in, *addr, *id, sl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-trace:", err)
		os.Exit(1)
	}

	if *doAss {
		if err := assert(trees); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-trace: ASSERT FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("galiot-trace: OK: %d traces, %d spans, 0 orphans, %d stitched gateway+cloud\n",
			len(trees), countSpans(trees), countStitched(trees))
		return
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(trees); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-trace:", err)
			os.Exit(1)
		}
		return
	}

	for i, tr := range trees {
		if i > 0 {
			fmt.Println()
		}
		var b strings.Builder
		render(&b, tr)
		fmt.Print(b.String())
	}
	if len(trees) == 0 {
		fmt.Println("no traces")
	}
}

// load resolves the selected trace trees from the file or the endpoint.
func load(in, addr, id string, slowest int) ([]galiot.ObsTraceTree, error) {
	if addr != "" {
		return fetch(addr, id, slowest)
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return nil, err
	}
	var trees []galiot.ObsTraceTree
	if err := json.Unmarshal(data, &trees); err != nil {
		return nil, fmt.Errorf("%s: %w", in, err)
	}
	if id != "" {
		want, err := galiot.ParseTraceID(id)
		if err != nil {
			return nil, err
		}
		for _, tr := range trees {
			if tr.TraceID == want {
				return []galiot.ObsTraceTree{tr}, nil
			}
		}
		return nil, fmt.Errorf("trace %s not in %s", id, in)
	}
	if slowest > 0 && len(trees) > slowest {
		sort.SliceStable(trees, func(i, j int) bool { return trees[i].Duration > trees[j].Duration })
		trees = trees[:slowest]
	}
	return trees, nil
}

// fetch pulls trees from a live ObsServer: one tree by ID, or the slowest N.
func fetch(addr, id string, slowest int) ([]galiot.ObsTraceTree, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	if id != "" {
		var tr galiot.ObsTraceTree
		if err := getJSON(client, fmt.Sprintf("http://%s/trace/tree?id=%s", addr, id), &tr); err != nil {
			return nil, err
		}
		return []galiot.ObsTraceTree{tr}, nil
	}
	if slowest <= 0 {
		slowest = 10
	}
	var trees []galiot.ObsTraceTree
	if err := getJSON(client, fmt.Sprintf("http://%s/trace/slowest?n=%d", addr, slowest), &trees); err != nil {
		return nil, err
	}
	return trees, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, v)
}

// assert is the CI continuity gate over the selected trees.
func assert(trees []galiot.ObsTraceTree) error {
	if len(trees) == 0 {
		return fmt.Errorf("no traces assembled")
	}
	orphans := 0
	for _, tr := range trees {
		orphans += tr.Orphans
	}
	if orphans != 0 {
		return fmt.Errorf("%d orphan spans (a parent span was never assembled into its trace)", orphans)
	}
	if countStitched(trees) == 0 {
		return fmt.Errorf("no trace carries both gateway-side and cloud-side spans")
	}
	return nil
}

func countSpans(trees []galiot.ObsTraceTree) int {
	n := 0
	for _, tr := range trees {
		n += len(tr.Spans)
	}
	return n
}

// countStitched counts traces whose spans cross the process boundary —
// the wire-propagated context did its job.
func countStitched(trees []galiot.ObsTraceTree) int {
	n := 0
	for _, tr := range trees {
		var gw, cl bool
		for _, sp := range tr.Spans {
			switch {
			case strings.HasPrefix(sp.Kind, "gateway"):
				gw = true
			case strings.HasPrefix(sp.Kind, "cloud"):
				cl = true
			}
		}
		if gw && cl {
			n++
		}
	}
	return n
}

// render writes one trace as an indented span tree plus its critical path.
func render(w *strings.Builder, tr galiot.ObsTraceTree) {
	fmt.Fprintf(w, "trace 0x%016x  %s  %d spans", tr.TraceID, ms(tr.Duration), len(tr.Spans))
	if tr.Replayed {
		fmt.Fprintf(w, "  [replayed]")
	}
	if tr.Orphans > 0 {
		fmt.Fprintf(w, "  [%d orphans]", tr.Orphans)
	}
	fmt.Fprintln(w)

	// Tree layout: children under their parent, roots (and orphans, whose
	// parent is missing) at the top level, all in span start order — the
	// store already sorted Spans that way.
	known := make(map[uint64]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		known[sp.SpanID] = true
	}
	children := make(map[uint64][]galiot.ObsSpanSnapshot)
	var roots []galiot.ObsSpanSnapshot
	for _, sp := range tr.Spans {
		if sp.Parent != 0 && known[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var base int64
	if len(tr.Spans) > 0 {
		base = tr.Spans[0].Start
	}
	var walk func(sp galiot.ObsSpanSnapshot, depth int)
	walk = func(sp galiot.ObsSpanSnapshot, depth int) {
		pad := strings.Repeat("  ", depth+1)
		fmt.Fprintf(w, "%s%s  span=0x%016x  +%s  %s", pad, sp.Kind, sp.SpanID, ms(sp.Start-base), ms(sp.End-sp.Start))
		if sp.DroppedStages > 0 {
			fmt.Fprintf(w, "  [%d stages dropped]", sp.DroppedStages)
		}
		fmt.Fprintln(w)
		for _, st := range sp.Stages {
			fmt.Fprintf(w, "%s  · %-14s %10s  value=%g\n", pad, st.Name, ms(st.Dur), st.Value)
		}
		for _, c := range children[sp.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}

	if len(tr.CriticalPath) > 0 {
		parts := make([]string, 0, len(tr.CriticalPath))
		for _, step := range tr.CriticalPath {
			parts = append(parts, fmt.Sprintf("%s/%s %s", step.Kind, step.Stage, ms(step.Dur)))
		}
		fmt.Fprintf(w, "  critical path (%s): %s\n", ms(tr.CriticalDur), strings.Join(parts, " -> "))
	}
}

// ms renders a nanosecond duration/offset compactly.
func ms(ns int64) string {
	switch {
	case ns >= 1e6 || ns <= -1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3 || ns <= -1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
