// Command galiot-gateway runs a GalioT gateway against a simulated antenna:
// duty-cycled transmitters of the prototype technologies (with collisions)
// feed the RTL-SDR front-end model; the gateway detects packets with the
// universal preamble, optionally resolves uncollided ones at the edge, and
// ships the rest to a galiot-cloud instance over TCP.
//
// The backhaul is resilient: a dropped connection is redialed with
// exponential backoff (-retry bounds the consecutive attempts) and the
// unacknowledged window is replayed, while detected segments keep flowing
// into a bounded spool (-spool). When the spool overflows during an outage
// the oldest segments fall back to a local edge-only decode. With -wal-dir
// the spool is also crash-durable: every admitted segment is journaled to a
// write-ahead log and segments unacknowledged at the time of a kill are
// replayed to the cloud on the next start (-wal-sync trades fsync cost
// against the power-loss window).
//
// Usage (with galiot-cloud running):
//
//	galiot-gateway -cloud 127.0.0.1:7373 -seconds 5 -snr-min 5 -snr-max 15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/galiot"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() { os.Exit(run()) }

// run is main's body, separated so the final metrics line and the stats
// summary are emitted on every exit path — a gateway that gives up after
// exhausting its retries still reports what it did first.
func run() int {
	var (
		cloudAddr = flag.String("cloud", "127.0.0.1:7373", "address of the galiot-cloud service")
		seconds   = flag.Float64("seconds", 2, "simulated airtime to generate")
		seed      = flag.Uint64("seed", 1, "traffic RNG seed")
		snrMin    = flag.Float64("snr-min", 5, "minimum per-packet SNR (dB)")
		snrMax    = flag.Float64("snr-max", 15, "maximum per-packet SNR (dB)")
		meanGap   = flag.Float64("gap", 0.05, "mean idle gap per transmitter (s); smaller = more collisions")
		edge      = flag.Bool("edge", true, "resolve uncollided packets at the edge")
		impaired  = flag.Bool("impaired", true, "use the RTL-SDR impairment model (vs ideal front-end)")
		window    = flag.Int("window", 0, "max unacknowledged segments in flight on a v2 session (0 = default)")
		protocol  = flag.Int("protocol", 0, "backhaul protocol version to offer (0 = latest; 1 = legacy request/reply, no reconnect)")
		retry     = flag.Int("retry", 0, "max consecutive reconnect attempts before giving up (0 = default)")
		spool     = flag.Int("spool", 0, "segment spool capacity between detection and backhaul (0 = default)")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /trace/recent, /events/recent, /healthz, /readyz and pprof on this address (empty = off)")
		walDir    = flag.String("wal-dir", "", "journal admitted segments to a write-ahead log in this directory and replay unacked ones on restart (empty = off)")
		walSync   = flag.String("wal-sync", "batched", "WAL fsync policy: record (every append), batched (every few appends), off (close only)")
	)
	flag.Parse()

	var walPolicy galiot.WALSyncPolicy
	switch *walSync {
	case "batched":
		walPolicy = galiot.WALSyncBatched
	case "record":
		walPolicy = galiot.WALSyncRecord
	case "off":
		walPolicy = galiot.WALSyncOff
	default:
		fmt.Fprintf(os.Stderr, "galiot-gateway: -wal-sync %q: want record, batched or off\n", *walSync)
		return 2
	}

	reg := galiot.NewObsRegistry()
	tracer := galiot.NewObsTracer(0)
	tracer.SetClock(func() int64 { return time.Now().UnixNano() })
	tracer.SetSite(fmt.Sprintf("gw-%d", *seed))
	journal := galiot.NewObsJournal(0)
	journal.SetClock(func() int64 { return time.Now().UnixNano() })
	health := galiot.NewObsHealth()
	// Gateway-side halves of the distributed traces: spans land here with
	// the same trace IDs the segments carry onto the wire, so this
	// process's /trace/tree and the cloud's show the two sides of one ID.
	traces := galiot.NewObsTraceStore(galiot.ObsTraceStoreConfig{Obs: reg, Journal: journal})
	tracer.SetSink(traces.Ingest)
	if *obsAddr != "" {
		obsSrv := &galiot.ObsServer{Registry: reg, Tracer: tracer, Journal: journal, Health: health, Traces: traces}
		if err := obsSrv.Start(*obsAddr); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-gateway: obs server:", err)
			return 1
		}
		defer func() {
			if err := obsSrv.Close(); err != nil {
				log.Printf("obs server close: %v", err)
			}
		}()
		log.Printf("observability endpoints on http://%s/metrics", obsSrv.Addr())
	}

	techs := galiot.Technologies()
	fe := galiot.IdealFrontend()
	if *impaired {
		fe = galiot.DefaultFrontend()
	}
	gw, err := galiot.NewGateway(galiot.GatewayConfig{
		ID:         fmt.Sprintf("gw-%d", *seed),
		Techs:      techs,
		Frontend:   fe,
		EdgeDecode: *edge,
		Window:     *window,
		Protocol:   *protocol,
		Obs:        reg,
		Tracer:     tracer,
		Journal:    journal,
		Health:     health,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-gateway:", err)
		return 1
	}

	// Produce captures of ~0.25 s each until the requested airtime is done.
	const captureLen = 1 << 18
	totalSamples := int(*seconds * galiot.SampleRate)
	captures := make(chan []complex128)
	gen := rng.New(*seed)
	groundTruth := 0
	go func() {
		defer close(captures)
		for produced := 0; produced < totalSamples; produced += captureLen {
			scen, err := sim.GenTraffic(sim.TrafficConfig{
				Techs:      techs,
				SampleRate: galiot.SampleRate,
				Duration:   captureLen,
				MeanGap:    *meanGap,
				SNRMin:     *snrMin,
				SNRMax:     *snrMax,
			}, gen.Split(uint64(produced)))
			if err != nil {
				log.Printf("traffic: %v", err)
				return
			}
			groundTruth += len(scen.Packets)
			captures <- scen.Capture
		}
	}()

	// Reports arrive concurrently: cloud replies from the backhaul session
	// and degraded-mode edge decodes from the spool's drop path.
	var mu sync.Mutex
	decoded := 0
	reports := func(r galiot.FramesReport) {
		mu.Lock()
		defer mu.Unlock()
		for _, f := range r.Frames {
			decoded++
			log.Printf("cloud decoded %-5s @%-9d crc=%v payload=%x", f.Tech, f.Offset, f.CRCOK, f.Payload)
		}
	}
	if *protocol == 1 {
		// Legacy request/reply has no sequence acks to replay, so it runs
		// over a single connection without the resilient client.
		var conn net.Conn
		conn, err = net.Dial("tcp", *cloudAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-gateway: cloud unreachable:", err)
			return 1
		}
		defer conn.Close()
		err = gw.Run(conn, captures, reports)
	} else {
		err = gw.RunResilient(galiot.GatewayResilient{
			Dial: func() (io.ReadWriteCloser, error) {
				return net.Dial("tcp", *cloudAddr)
			},
			Retry:         galiot.RetryPolicy{MaxAttempts: *retry, Seed: *seed},
			SpoolCapacity: *spool,
			Epoch:         uint64(time.Now().UnixNano()),
			WALDir:        *walDir,
			WALSync:       walPolicy,
		}, captures, reports)
	}
	exit := 0
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-gateway:", err)
		exit = 1
	}

	st := gw.Stats()
	mu.Lock()
	got := decoded
	mu.Unlock()
	log.Printf("gateway done: %d captures, %d detections, %d segments shipped (%d resolved at edge, %d edge frames)",
		st.CapturesProcessed, st.Detections, st.SegmentsShipped, st.SegmentsResolved, st.EdgeFrames)
	log.Printf("backhaul: %d wire bytes vs %d raw bytes (%.1f%% of raw); %d packets on air, %d decoded, %d at edge",
		st.WireBytes, st.RawBytes, 100*float64(st.WireBytes)/float64(st.RawBytes), groundTruth, got, st.EdgeFrames)
	if st.BusyRejects > 0 || st.BadReports > 0 {
		log.Printf("backhaul: %d segments rejected busy by the cloud, %d unparseable replies", st.BusyRejects, st.BadReports)
	}
	snap := reg.Snapshot()
	if rc := snap.Counters["gateway_reconnects_total"]; rc > 0 || exit != 0 {
		log.Printf("resilience: %d reconnects, %d segments dropped to degraded decode, %d replayed",
			snap.Counters["gateway_reconnects_total"],
			snap.Counters["gateway_spool_dropped_total"],
			snap.Counters["gateway_replayed_segments_total"])
		// The journal is the flight recorder for those transitions; dump it
		// alongside the counters so a post-mortem has the exact sequence.
		if data, err := json.Marshal(journal.Recent()); err == nil {
			log.Printf("events: %s", data)
		}
	}
	// The metrics line is the machine-readable exit summary; emit it on
	// failure too so an aborted run still leaves its ledger behind.
	if data, err := json.Marshal(snap); err == nil {
		log.Printf("metrics: %s", data)
	}
	return exit
}
