// Command galiot-sim runs the paper-reproduction experiments: every table
// and figure of the evaluation (Sec. 7) plus the DESIGN.md ablations, over
// the simulated RTL-SDR substrate.
//
// Usage:
//
//	galiot-sim -exp fig3b            # one experiment
//	galiot-sim -exp all -quick       # everything, reduced trial counts
//	galiot-sim -list                 # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id to run, or 'all'")
		seed  = flag.Uint64("seed", 1, "base RNG seed (runs are deterministic per seed)")
		quick = flag.Bool("quick", false, "reduced trial counts for a fast smoke run")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	opt := experiments.Options{Seed: *seed, Quick: *quick}
	var err error
	if *exp == "all" {
		err = experiments.RunAll(opt, os.Stdout)
	} else {
		err = experiments.Run(*exp, opt, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-sim:", err)
		os.Exit(1)
	}
}
