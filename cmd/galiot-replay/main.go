// Command galiot-replay runs the full GalioT pipeline over a cu8 capture
// file (rtl_sdr-compatible, e.g. produced by galiot-record or by real
// hardware tuned to a 1 MHz slice of the 868 MHz band): universal-preamble
// detection, segment extraction and Algorithm-1 collision decoding, all in
// process, printing every recovered frame.
//
//	galiot-replay -in capture.cu8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/galiot"
	"repro/internal/dsp"
	"repro/internal/iq"
)

func main() {
	var (
		in   = flag.String("in", "capture.cu8", "input cu8 file")
		rate = flag.Float64("rate", galiot.SampleRate, "capture sample rate in Hz")
		edge = flag.Bool("edge", true, "resolve uncollided packets at the edge")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-replay:", err)
		os.Exit(1)
	}
	defer f.Close()

	techs := galiot.Technologies()
	gw, err := galiot.NewGateway(galiot.GatewayConfig{
		ID:         "replay",
		Techs:      techs,
		EdgeDecode: *edge,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-replay:", err)
		os.Exit(1)
	}
	svc := galiot.NewCloud(techs...)

	printFrame := func(where string, tech string, offset int64, crc bool, payload []byte) {
		fmt.Printf("%-5s %-6s @%-9d crc=%-5v payload=%x\n", where, tech, offset, crc, payload)
	}
	decoded := 0
	handle := func(res galiot.GatewayResult) {
		for _, fr := range res.EdgeFrames {
			decoded++
			printFrame("edge", fr.Tech, int64(fr.Offset), fr.CRCOK, fr.Payload)
		}
		for _, seg := range res.Shipped {
			report := svc.DecodeSegment(seg)
			for _, fr := range report.Frames {
				decoded++
				printFrame("cloud", fr.Tech, fr.Offset, fr.CRCOK, fr.Payload)
			}
		}
	}

	reader := iq.NewReader(f, iq.CU8)
	if !dsp.ApproxEqual(*rate, galiot.SampleRate, 1e-6) {
		// Non-native capture rate (e.g. rtl_sdr's customary 2.048 MHz):
		// read everything and resample into the 1 MHz pipeline.
		var all []complex128
		tmp := make([]complex128, 1<<18)
		for {
			n, err := reader.Read(tmp)
			if n > 0 {
				all = append(all, tmp[:n]...)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "galiot-replay:", err)
				os.Exit(1)
			}
		}
		converted, err := dsp.Resample(all, *rate, galiot.SampleRate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-replay: resample:", err)
			os.Exit(1)
		}
		handle(gw.Process(converted))
		handle(gw.Flush())
	} else {
		buf := make([]complex128, 1<<18)
		for {
			n, err := reader.Read(buf)
			if n > 0 {
				handle(gw.Process(buf[:n]))
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "galiot-replay:", err)
				os.Exit(1)
			}
		}
		handle(gw.Flush())
	}

	st := gw.Stats()
	fmt.Printf("\nreplayed %.2f s (capture rate %.0f Hz): %d segments, %d frames recovered\n",
		float64(st.RawBytes/2)/galiot.SampleRate, *rate, st.SegmentsShipped+st.SegmentsResolved, decoded)
}
