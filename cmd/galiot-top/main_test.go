package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/galiot"
)

// startEndpoint serves a populated observability endpoint: two registry
// targets with overlapping series, one health registry with a failing
// readiness check, and a journal with a coalesced burst.
func startEndpoint(t *testing.T) (base string, srv *galiot.ObsServer) {
	t.Helper()
	a, b := galiot.NewObsRegistry(), galiot.NewObsRegistry()
	a.Counter("cloud_segments_decoded_total").Add(30)
	b.Counter("cloud_segments_decoded_total").Add(12)
	a.Gauge("farm_jobs_queued_count").Set(3)
	b.Gauge("farm_jobs_queued_count").Set(9)
	for v := int64(1); v <= 64; v *= 2 {
		a.Histogram("farm_queue_wait_samples", 0).Observe(v)
	}

	h := galiot.NewObsHealth()
	h.Register("cloud_farm_liveness", func() galiot.ObsCheckResult {
		return galiot.ObsCheckResult{Healthy: true, Detail: "2 workers"}
	})
	h.RegisterReadiness("cloud_farm_headroom", func() galiot.ObsCheckResult {
		return galiot.ObsCheckResult{Healthy: false, Detail: "queue saturated at 64/64"}
	})

	j := galiot.NewObsJournal(0)
	j.Record("gateway_session_establish", 4)
	j.Record("gateway_busy_reject", 17)
	j.Record("gateway_busy_reject", 18)

	srv = &galiot.ObsServer{
		Registry: a,
		Journal:  j,
		Health:   h,
		Fleet: galiot.NewObsFleet(
			galiot.ObsRegistryTarget("shard0", a),
			galiot.ObsRegistryTarget("shard1", b),
		),
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("obs server close: %v", err)
		}
	})
	return "http://" + srv.Addr().String(), srv
}

// TestFetchAndRender drives the scraper against a live endpoint and
// checks the rendered dashboard carries every section: the health
// verdicts (including the 503 /readyz body), the rollup's exact counter
// sum with per-target breakdown, gauge extremes, merged histogram
// quantiles, and the coalesced event burst.
func TestFetchAndRender(t *testing.T) {
	base, _ := startEndpoint(t)
	client := &http.Client{Timeout: 5 * time.Second}
	v, err := fetch(client, base)
	if err != nil {
		t.Fatal(err)
	}

	if !v.Live.Healthy {
		t.Errorf("liveness degraded: %+v", v.Live)
	}
	if v.Ready.Healthy {
		t.Errorf("readiness healthy despite saturated farm: %+v", v.Ready)
	}
	if got := v.Fleet.Counters["cloud_segments_decoded_total"].Total; got != 42 {
		t.Errorf("rollup total = %d, want 42", got)
	}
	if len(v.Events) != 2 {
		t.Fatalf("events = %+v, want 2 entries", v.Events)
	}
	if e := v.Events[1]; e.Name != "gateway_busy_reject" || e.Count != 2 || e.Value != 18 {
		t.Errorf("coalesced burst = %+v, want gateway_busy_reject x2 value 18", e)
	}

	out := render(v, 12, base)
	for _, want := range []string{
		"health: OK (1 checks)",
		"ready: DEGRADED (1/2 checks failing)",
		"FAIL cloud_farm_headroom",
		"queue saturated at 64/64",
		"targets: shard0 shard1",
		"cloud_segments_decoded_total",
		"shard0=30 shard1=12",
		"farm_jobs_queued_count",
		"min=3@shard0 max=9@shard1",
		"farm_queue_wait_samples",
		"count=7",
		"gateway_session_establish",
		"gateway_busy_reject",
		"x2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered view is missing %q:\n%s", want, out)
		}
	}
}

// TestRenderEventTail bounds the journal tail to the most recent entries.
func TestRenderEventTail(t *testing.T) {
	base, _ := startEndpoint(t)
	client := &http.Client{Timeout: 5 * time.Second}
	v, err := fetch(client, base)
	if err != nil {
		t.Fatal(err)
	}
	out := render(v, 1, base)
	if strings.Contains(out, "gateway_session_establish") {
		t.Errorf("tail of 1 still shows the oldest event:\n%s", out)
	}
	if !strings.Contains(out, "events (1 of 2):") {
		t.Errorf("tail header missing:\n%s", out)
	}
}

// TestFetchRejectsDeadEndpoint surfaces a connection error instead of
// rendering an empty view.
func TestFetchRejectsDeadEndpoint(t *testing.T) {
	client := &http.Client{Timeout: 500 * time.Millisecond}
	if _, err := fetch(client, "http://127.0.0.1:1"); err == nil {
		t.Fatal("fetch of a dead endpoint succeeded")
	}
}
