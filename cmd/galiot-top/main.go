// Command galiot-top is the operator's one-glance view of a running
// galiot process: it scrapes the observability endpoint of a
// galiot-cloud, galiot-gateway or galiot-fleet run (-addr) and renders
// health, the fleet metrics rollup and the recent event journal as a
// compact text dashboard. One-shot by default; -watch refreshes on an
// interval until interrupted, and -json emits the raw scrape instead of
// the rendered view.
//
// Usage:
//
//	galiot-top -addr 127.0.0.1:9900
//	galiot-top -addr 127.0.0.1:9900 -watch 2s
//	galiot-top -addr 127.0.0.1:9900 -json
//
// With -assert the dashboard becomes a scriptable gate: each
// comma-separated `series op value` expression is checked against the
// fleet rollup (counters gate on the total, gauges on the max, histograms
// on the count) and the process exits non-zero when any fails. -rollup
// evaluates a canned /fleet/metrics JSON file instead of scraping, so the
// same gate runs against CI artifacts:
//
//	galiot-top -addr 127.0.0.1:9900 -assert 'gateway_spool_dropped_total==0,wal_live_bytes<=1048576'
//	galiot-top -rollup ROLLUP.json -assert 'cloud_segments_decoded_total>=100'
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"flag"

	"repro/galiot"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9900", "observability endpoint to scrape (host:port of a -obs-addr)")
		watch   = flag.Duration("watch", 0, "refresh on this interval until interrupted (0 = one shot)")
		asJSON  = flag.Bool("json", false, "emit the raw scrape as one JSON object instead of the text view")
		events  = flag.Int("events", 12, "journal entries to show (most recent; 0 = all)")
		asserts = flag.String("assert", "", "comma-separated threshold gates, e.g. 'gateway_spool_dropped_total==0,wal_live_bytes<=1048576'; exit 1 when any fails")
		rollup  = flag.String("rollup", "", "evaluate -assert against this /fleet/metrics JSON file instead of scraping -addr")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + *addr

	if *asserts != "" {
		os.Exit(runAsserts(client, base, *rollup, *asserts))
	}
	if *rollup != "" {
		fmt.Fprintln(os.Stderr, "galiot-top: -rollup only applies to -assert mode")
		os.Exit(2)
	}
	if *watch <= 0 {
		v, err := fetch(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-top:", err)
			os.Exit(1)
		}
		emit(v, *asJSON, *events, base)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*watch)
	defer tick.Stop()
	for {
		v, err := fetch(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-top:", err)
		} else {
			if !*asJSON {
				// Clear the terminal between refreshes so the view reads
				// like top, not like a scrolling log.
				fmt.Print("\x1b[2J\x1b[H")
			}
			emit(v, *asJSON, *events, base)
		}
		select {
		case <-sig:
			return
		case <-tick.C:
		}
	}
}

// view is one full scrape of an observability endpoint.
type view struct {
	Live   galiot.ObsHealthSnapshot `json:"healthz"`
	Ready  galiot.ObsHealthSnapshot `json:"readyz"`
	Fleet  galiot.ObsFleetSnapshot  `json:"fleet"`
	Events []galiot.ObsEvent        `json:"events"`
}

// fetch scrapes the four observability surfaces. Health endpoints answer
// 503 when degraded by design, so any decodable body counts as a
// successful scrape there.
func fetch(client *http.Client, base string) (*view, error) {
	v := &view{}
	if err := getJSON(client, base+"/healthz", &v.Live, http.StatusOK, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}
	if err := getJSON(client, base+"/readyz", &v.Ready, http.StatusOK, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}
	if err := getJSON(client, base+"/fleet/metrics", &v.Fleet, http.StatusOK); err != nil {
		return nil, err
	}
	if err := getJSON(client, base+"/events/recent", &v.Events, http.StatusOK); err != nil {
		return nil, err
	}
	return v, nil
}

// getJSON fetches url and decodes the body when the status is one of ok.
func getJSON(client *http.Client, url string, into any, ok ...int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	accepted := false
	for _, s := range ok {
		if resp.StatusCode == s {
			accepted = true
			break
		}
	}
	if !accepted {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(into); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

// emit prints one scrape in the selected format.
func emit(v *view, asJSON bool, maxEvents int, base string) {
	if asJSON {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-top:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", data)
		return
	}
	fmt.Print(render(v, maxEvents, base))
}

// render formats the text dashboard: health verdicts, the fleet rollup
// (counters, gauge extremes, histogram quantiles) and the event tail.
func render(v *view, maxEvents int, base string) string {
	var w strings.Builder
	fmt.Fprintf(&w, "galiot-top %s\n", base)
	fmt.Fprintf(&w, "health: %s    ready: %s\n", verdict(v.Live), verdict(v.Ready))
	for _, c := range v.Ready.Checks {
		mark := "ok"
		if !c.Healthy {
			mark = "FAIL"
		}
		fmt.Fprintf(&w, "  %-4s %-36s %s\n", mark, c.Name, c.Detail)
	}

	fmt.Fprintf(&w, "targets: %s\n", strings.Join(v.Fleet.Targets, " "))
	for _, name := range sortedKeys(v.Fleet.Errors) {
		fmt.Fprintf(&w, "  SCRAPE ERROR %s: %s\n", name, v.Fleet.Errors[name])
	}
	if len(v.Fleet.Counters) > 0 {
		fmt.Fprintf(&w, "counters:\n")
		for _, name := range sortedKeys(v.Fleet.Counters) {
			c := v.Fleet.Counters[name]
			fmt.Fprintf(&w, "  %-44s %12d  %s\n", name, c.Total, perTarget(c.PerTarget))
		}
	}
	if len(v.Fleet.Gauges) > 0 {
		fmt.Fprintf(&w, "gauges:\n")
		for _, name := range sortedKeys(v.Fleet.Gauges) {
			g := v.Fleet.Gauges[name]
			fmt.Fprintf(&w, "  %-44s sum=%-10d min=%d@%s max=%d@%s\n",
				name, g.Sum, g.Min, g.MinTarget, g.Max, g.MaxTarget)
		}
	}
	if len(v.Fleet.Histograms) > 0 {
		fmt.Fprintf(&w, "histograms:\n")
		for _, name := range sortedKeys(v.Fleet.Histograms) {
			h := v.Fleet.Histograms[name]
			fmt.Fprintf(&w, "  %-44s count=%-10d p50=%-8d p99=%d", name, h.Count, h.P50, h.P99)
			if h.Exemplar != nil {
				// The high-watermark observation's trace: feed it to
				// galiot-trace -id to see where the time went.
				fmt.Fprintf(&w, "  ex=%d trace=0x%016x", h.Exemplar.Value, h.Exemplar.TraceID)
			}
			fmt.Fprintf(&w, "\n")
		}
	}

	evs := v.Events
	if maxEvents > 0 && len(evs) > maxEvents {
		evs = evs[len(evs)-maxEvents:]
	}
	fmt.Fprintf(&w, "events (%d of %d):\n", len(evs), len(v.Events))
	for _, e := range evs {
		burst := ""
		if e.Count > 1 {
			burst = fmt.Sprintf(" x%d", e.Count)
		}
		fmt.Fprintf(&w, "  #%-6d %-36s value=%d%s\n", e.Seq, e.Name, e.Value, burst)
	}
	return w.String()
}

// verdict reduces a health snapshot to its one-word headline.
func verdict(s galiot.ObsHealthSnapshot) string {
	if s.Healthy {
		return fmt.Sprintf("OK (%d checks)", len(s.Checks))
	}
	bad := 0
	for _, c := range s.Checks {
		if !c.Healthy {
			bad++
		}
	}
	return fmt.Sprintf("DEGRADED (%d/%d checks failing)", bad, len(s.Checks))
}

// sortedKeys returns a map's keys in order, so the view (and the test
// diffing it) is stable.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perTarget formats a counter's per-target breakdown, key order.
func perTarget(m map[string]uint64) string {
	var b strings.Builder
	for i, name := range sortedKeys(m) {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, m[name])
	}
	return b.String()
}
