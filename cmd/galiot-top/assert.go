package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/galiot"
)

// runAsserts is -assert mode's whole lifecycle: load or scrape the rollup,
// evaluate the gates, print one line per gate, and return the process exit
// code (0 all pass, 1 any fail, 2 usage or scrape trouble).
func runAsserts(client *http.Client, base, rollupPath, spec string) int {
	asserts, err := parseAsserts(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-top:", err)
		return 2
	}
	var snap *galiot.ObsFleetSnapshot
	if rollupPath != "" {
		snap, err = loadSnapshot(rollupPath)
	} else {
		snap = &galiot.ObsFleetSnapshot{}
		err = getJSON(client, base+"/fleet/metrics", snap, http.StatusOK)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-top:", err)
		return 2
	}
	lines, ok := evalAsserts(snap, asserts)
	for _, line := range lines {
		fmt.Println(line)
	}
	if !ok {
		return 1
	}
	return 0
}

// assertion is one parsed threshold expression from -assert.
type assertion struct {
	name  string
	op    string
	value int64
}

// assertOps is the comparison vocabulary, longest operators first so that
// "<=" never parses as "<" with a stray "=" in the number.
var assertOps = []string{"<=", ">=", "==", "!=", "<", ">"}

// parseAsserts splits a comma-separated -assert expression list into
// assertions. Each expression is `series op value`, e.g.
// "gateway_spool_depth_count<=8" or "wal_live_bytes==0". Whitespace around
// expressions is tolerated (shells often add it around commas).
func parseAsserts(spec string) ([]assertion, error) {
	var out []assertion
	for _, raw := range strings.Split(spec, ",") {
		expr := strings.TrimSpace(raw)
		if expr == "" {
			continue
		}
		var a assertion
		for _, op := range assertOps {
			if i := strings.Index(expr, op); i > 0 {
				a = assertion{name: strings.TrimSpace(expr[:i]), op: op}
				v, err := strconv.ParseInt(strings.TrimSpace(expr[i+len(op):]), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("assert %q: bad threshold: %v", expr, err)
				}
				a.value = v
				break
			}
		}
		if a.op == "" {
			return nil, fmt.Errorf("assert %q: no comparison operator (want one of %s)", expr, strings.Join(assertOps, " "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-assert given but no expressions parsed from %q", spec)
	}
	return out, nil
}

// resolveSeries reads the asserted value of one series from the rollup:
// counters gate on the fleet total, gauges on the fleet maximum (thresholds
// bound the worst member, not the sum), histograms on the observation
// count. The second return is false when no target reported the series.
func resolveSeries(snap *galiot.ObsFleetSnapshot, name string) (int64, bool) {
	if c, ok := snap.Counters[name]; ok {
		return int64(c.Total), true
	}
	if g, ok := snap.Gauges[name]; ok {
		return g.Max, true
	}
	if h, ok := snap.Histograms[name]; ok {
		return int64(h.Count), true
	}
	return 0, false
}

// evalAsserts checks every assertion against the snapshot and returns one
// result line per assertion plus the overall verdict. A series absent from
// the rollup fails its assertion: a gate that silently passes because the
// metric was renamed is worse than a false alarm.
func evalAsserts(snap *galiot.ObsFleetSnapshot, asserts []assertion) (lines []string, ok bool) {
	ok = true
	for _, a := range asserts {
		got, found := resolveSeries(snap, a.name)
		if !found {
			lines = append(lines, fmt.Sprintf("FAIL %s%s%d (series not in rollup)", a.name, a.op, a.value))
			ok = false
			continue
		}
		pass := false
		switch a.op {
		case "<=":
			pass = got <= a.value
		case ">=":
			pass = got >= a.value
		case "==":
			pass = got == a.value
		case "!=":
			pass = got != a.value
		case "<":
			pass = got < a.value
		case ">":
			pass = got > a.value
		}
		mark := "ok  "
		if !pass {
			mark = "FAIL"
			ok = false
		}
		lines = append(lines, fmt.Sprintf("%s %s%s%d (value %d)", mark, a.name, a.op, a.value, got))
	}
	return lines, ok
}

// loadSnapshot reads a canned FleetSnapshot from a JSON file (the bytes of
// a /fleet/metrics response or a fleet soak's ROLLUP.json artifact), so the
// gate can run in CI without a live endpoint.
func loadSnapshot(path string) (*galiot.ObsFleetSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap galiot.ObsFleetSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}
