package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseAsserts(t *testing.T) {
	got, err := parseAsserts("gateway_spool_depth_count<=8, wal_live_bytes==0 ,cloud_segments_decoded_total>10")
	if err != nil {
		t.Fatal(err)
	}
	want := []assertion{
		{name: "gateway_spool_depth_count", op: "<=", value: 8},
		{name: "wal_live_bytes", op: "==", value: 0},
		{name: "cloud_segments_decoded_total", op: ">", value: 10},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d assertions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assertion %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	for _, bad := range []string{"", "  ,  ", "no_operator", "name<=abc", "<=5"} {
		if _, err := parseAsserts(bad); err == nil {
			t.Fatalf("parseAsserts(%q) accepted", bad)
		}
	}
	// "<=" must win over "<" even though "<" matches first by position.
	one, err := parseAsserts("a_b<=5")
	if err != nil || one[0].op != "<=" || one[0].value != 5 {
		t.Fatalf("a_b<=5 parsed as %+v (err %v)", one, err)
	}
}

// TestEvalAssertsOverCannedRollup runs the gate over the checked-in
// ROLLUP.json artifact: counters resolve to the fleet total, gauges to the
// max, histograms to the count, and a missing series fails rather than
// silently passing.
func TestEvalAssertsOverCannedRollup(t *testing.T) {
	snap, err := loadSnapshot(filepath.Join("testdata", "ROLLUP.json"))
	if err != nil {
		t.Fatal(err)
	}

	pass := []string{
		"cloud_segments_decoded_total==42", // counter -> total
		"gateway_spool_dropped_total<=0",   // zero threshold holds
		"gateway_spool_depth_count<=9",     // gauge -> max (9), not sum (11)
		"wal_live_bytes<=65536",            // gauge max exactly at threshold
		"farm_queue_wait_samples>=7",       // histogram -> count
		"wal_truncated_records_total!=0",   // observed truncation
	}
	lines, ok := evalAsserts(snap, mustParse(t, strings.Join(pass, ",")))
	if !ok {
		t.Fatalf("passing gate failed:\n%s", strings.Join(lines, "\n"))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "ok") {
			t.Fatalf("unexpected line in passing gate: %q", l)
		}
	}

	fail := []struct {
		expr   string
		reason string
	}{
		{"gateway_spool_depth_count<=8", "gauge max 9 over threshold"},
		{"cloud_segments_decoded_total<42", "counter total not under"},
		{"wal_records_appended_total==0", "series absent from rollup"},
	}
	for _, f := range fail {
		lines, ok := evalAsserts(snap, mustParse(t, f.expr))
		if ok {
			t.Fatalf("%s should fail (%s):\n%s", f.expr, f.reason, strings.Join(lines, "\n"))
		}
		if len(lines) != 1 || !strings.HasPrefix(lines[0], "FAIL") {
			t.Fatalf("%s: want one FAIL line, got %v", f.expr, lines)
		}
	}

	// Mixed gate: one failure fails the whole gate but every line reports.
	lines, ok = evalAsserts(snap, mustParse(t, "cloud_segments_decoded_total==42,wal_live_bytes==0"))
	if ok || len(lines) != 2 {
		t.Fatalf("mixed gate: ok=%v lines=%v", ok, lines)
	}
	if !strings.HasPrefix(lines[0], "ok") || !strings.HasPrefix(lines[1], "FAIL") {
		t.Fatalf("mixed gate lines = %v", lines)
	}
}

func mustParse(t *testing.T, spec string) []assertion {
	t.Helper()
	a, err := parseAsserts(spec)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
