// Command galiot-wal inspects a gateway's write-ahead-log directory
// offline: it parses every wal-*.log file with the same framing, CRC32C
// checks and first-bad-frame cut that recovery uses, but mutates nothing —
// no truncation, no compaction — so it is safe to point at a live or
// post-crash WAL.
//
// For each file it reports the checksum-clean data and ack records (with
// each data record's segment position, size and embedded trace ID) and any
// torn tail; the summary lists the live records — what a restart would
// replay — and how many of them carry trace context.
//
//	galiot-wal -dir /var/lib/galiot/wal            # human-readable report
//	galiot-wal -dir ./wal -records                 # include per-record dump
//	galiot-wal -dir ./wal -json                    # machine-readable
//	galiot-wal -dir ./wal -verify                  # exit 1 on torn bytes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/resilience/wal"
)

func main() {
	var (
		dir     = flag.String("dir", "", "WAL directory to inspect (required)")
		asJSON  = flag.Bool("json", false, "emit the full report as JSON")
		records = flag.Bool("records", false, "list every record, not just per-file totals")
		verify  = flag.Bool("verify", false, "exit non-zero if any file holds a torn or corrupt tail")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "galiot-wal: -dir is required")
		os.Exit(2)
	}

	rep, err := wal.Inspect(*dir, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-wal:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "galiot-wal:", err)
			os.Exit(1)
		}
	} else {
		printReport(rep, *records)
	}

	if *verify && rep.TornBytes > 0 {
		fmt.Fprintf(os.Stderr, "galiot-wal: VERIFY FAIL: %d torn bytes\n", rep.TornBytes)
		os.Exit(1)
	}
}

func printReport(rep *wal.Report, records bool) {
	fmt.Printf("%s: %d files\n", rep.Dir, len(rep.Files))
	for _, f := range rep.Files {
		fmt.Printf("  %s: %d bytes, %d data, %d acks", f.Name, f.Bytes, f.Data, f.Acks)
		if f.TornBytes > 0 {
			fmt.Printf(", TORN TAIL %d bytes", f.TornBytes)
		}
		fmt.Println()
		if records {
			for _, r := range f.Records {
				switch r.Kind {
				case "data":
					fmt.Printf("    data id=%d start=%d samples=%d", r.ID, r.SegStart, r.SegSamples)
					if r.TraceID != 0 {
						fmt.Printf(" trace=0x%016x", r.TraceID)
					}
					fmt.Println()
				case "ack":
					fmt.Printf("    ack  id=%d\n", r.ID)
				}
			}
		}
	}
	fmt.Printf("totals: %d data records, %d acks, %d live (unacked), %d of them traced",
		rep.DataRecords, rep.AckRecords, len(rep.Live), rep.Traced)
	if rep.TornBytes > 0 {
		fmt.Printf(", %d torn bytes", rep.TornBytes)
	}
	fmt.Println()
	for _, r := range rep.Live {
		fmt.Printf("  live id=%d start=%d samples=%d", r.ID, r.SegStart, r.SegSamples)
		if r.TraceID != 0 {
			fmt.Printf(" trace=0x%016x", r.TraceID)
		}
		fmt.Println()
	}
}
