// Command galiot-record synthesizes a duty-cycled multi-technology capture
// and writes it as a cu8 file — the RTL-SDR's native unsigned 8-bit
// interleaved I/Q format, byte-compatible with rtl_sdr(1) output — along
// with a ground-truth sidecar listing every transmitted frame. Use
// galiot-replay to run the GalioT pipeline over the file.
//
//	galiot-record -out capture.cu8 -seconds 2 -seed 7
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/galiot"
	"repro/internal/dsp"
	"repro/internal/iq"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		out     = flag.String("out", "capture.cu8", "output cu8 file")
		truth   = flag.String("truth", "", "ground-truth sidecar (default <out>.truth)")
		seconds = flag.Float64("seconds", 1, "capture length in seconds")
		seed    = flag.Uint64("seed", 1, "traffic RNG seed")
		snrMin  = flag.Float64("snr-min", 5, "minimum per-packet SNR (dB)")
		snrMax  = flag.Float64("snr-max", 15, "maximum per-packet SNR (dB)")
		meanGap = flag.Float64("gap", 0.08, "mean idle gap per transmitter (s)")
	)
	flag.Parse()
	if *truth == "" {
		*truth = *out + ".truth"
	}

	techs := galiot.Technologies()
	scen, err := sim.GenTraffic(sim.TrafficConfig{
		Techs:      techs,
		SampleRate: galiot.SampleRate,
		Duration:   int(*seconds * galiot.SampleRate),
		MeanGap:    *meanGap,
		SNRMin:     *snrMin,
		SNRMax:     *snrMax,
	}, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-record:", err)
		os.Exit(1)
	}

	// Scale into the cu8 range like an AGC'd front-end: peak at 0.95.
	samples := dsp.Clone(scen.Capture)
	_, peak := dsp.MaxAbs(samples)
	if peak > 0 {
		dsp.Scale(samples, 0.95/peak)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-record:", err)
		os.Exit(1)
	}
	defer f.Close()
	w := iq.NewWriter(f, iq.CU8)
	if _, err := w.Write(samples); err != nil {
		fmt.Fprintln(os.Stderr, "galiot-record:", err)
		os.Exit(1)
	}

	tf, err := os.Create(*truth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-record:", err)
		os.Exit(1)
	}
	defer tf.Close()
	// A short write here silently corrupts the ground truth every
	// detection-rate comparison is scored against, so fail loudly.
	var truthBuf bytes.Buffer
	fmt.Fprintf(&truthBuf, "# tech offset length snr_db payload_hex\n")
	for _, p := range scen.Packets {
		fmt.Fprintf(&truthBuf, "%s %d %d %.1f %x\n", p.Tech, p.Offset, p.Length, p.SNRdB, p.Payload)
	}
	if _, err := tf.Write(truthBuf.Bytes()); err != nil {
		fmt.Fprintln(os.Stderr, "galiot-record:", err)
		os.Exit(1)
	}

	fmt.Printf("wrote %s: %d samples (%.2f s at %.0f Hz), %d packets (truth in %s)\n",
		*out, len(samples), float64(len(samples))/galiot.SampleRate, galiot.SampleRate,
		len(scen.Packets), *truth)
}
