package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// runLint invokes the driver seam and captures its streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = lintMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListRules(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"ctxflow", "lockorder", "unguardedstats", "errdrop"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing rule %q:\n%s", want, out)
		}
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	code, _, errOut := runLint(t, "-rules", "nosuchrule")
	if code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown rule") {
		t.Fatalf("stderr = %q, want unknown-rule message", errOut)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	code, _, _ := runLint(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestJSONEmptyFindingsIsArray(t *testing.T) {
	// This package is clean under floateq, so the encoder must still emit
	// a JSON array — tools consuming the artifact choke on null.
	code, out, errOut := runLint(t, "-json", "-rules", "floateq", "./cmd/galiot-lint")
	if code != 0 {
		t.Fatalf("exited %d, stderr:\n%s", code, errOut)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Fatalf("empty findings encoded as %q, want []", strings.TrimSpace(out))
	}
}

// chdirTemp moves the test into a throwaway module so findModuleRoot
// resolves to it; restored on cleanup. Tests using it must not be parallel.
func chdirTemp(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
	return root
}

const dirtyModule = `module scratch.test

go 1.22
`

// dirtySrc trips errdrop twice in one file (descending line order in the
// source map) so sorting is observable, and carries one live and one stale
// suppression for the audit tests.
var dirtyFiles = map[string]string{
	"go.mod": dirtyModule,
	"a/a.go": `package a

import "os"

func Two() {
	os.Remove("second")
}

func One() {
	os.Remove("first")
}

func ignored() {
	//lint:ignore errdrop the remove error has no consumer here
	os.Remove("covered")
}
`,
	"b/b.go": `package b

//lint:ignore errdrop nothing on the next line can fail
func Quiet() int { return 1 }
`,
}

func TestFindingsSortedAndGateExitCode(t *testing.T) {
	chdirTemp(t, dirtyFiles)
	code, out, errOut := runLint(t, "-rules", "errdrop", "./...")
	if code != 1 {
		t.Fatalf("exited %d with findings present, want 1\nstdout:%s\nstderr:%s", code, out, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(lines), out)
	}
	// Both findings are in a/a.go; Two() precedes One() in the file, so
	// line order must win over function-name or discovery order.
	if !strings.HasPrefix(lines[0], filepath.Join("a", "a.go")+":6:") ||
		!strings.HasPrefix(lines[1], filepath.Join("a", "a.go")+":10:") {
		t.Fatalf("findings not sorted by (file, line):\n%s", out)
	}
}

func TestJSONFindingsSorted(t *testing.T) {
	chdirTemp(t, dirtyFiles)
	code, out, _ := runLint(t, "-json", "-rules", "errdrop", "./...")
	if code != 1 {
		t.Fatalf("exited %d, want 1", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(diags) != 2 || diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Fatalf("JSON findings missing or unsorted: %+v", diags)
	}
}

func TestAuditIgnoresReportsOnlyStale(t *testing.T) {
	chdirTemp(t, dirtyFiles)
	code, out, errOut := runLint(t, "-audit-ignores", "./...")
	if code != 1 {
		t.Fatalf("exited %d with a stale ignore present, want 1\nstderr:%s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], filepath.Join("b", "b.go")) ||
		!strings.Contains(lines[0], "stale //lint:ignore errdrop") {
		t.Fatalf("audit output = %q, want exactly the b/b.go directive", out)
	}
	if strings.Contains(out, filepath.Join("a", "a.go")) {
		t.Fatalf("audit reported the exercised directive in a/a.go:\n%s", out)
	}
}

func TestAuditIgnoresJSON(t *testing.T) {
	chdirTemp(t, map[string]string{
		"go.mod": dirtyModule,
		"c/c.go": "package c\n\nfunc Clean() {}\n",
	})
	code, out, _ := runLint(t, "-audit-ignores", "-json", "./...")
	if code != 0 {
		t.Fatalf("clean audit exited %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Fatalf("empty audit encoded as %q, want []", strings.TrimSpace(out))
	}
}
