// galiot-lint is the repository's static-analysis driver: it loads and
// type-checks every package matched by its arguments (default ./...) using
// only the standard library's go/* packages, runs the rule suite from
// repro/internal/analysis/rules, and prints findings with file:line:col
// positions.
//
// Usage:
//
//	galiot-lint [-json] [-rules list] [-list] [packages]
//
// Exit status: 0 when clean, 1 when there are findings, 2 on load or
// usage errors — so CI can gate on it directly. Individual findings can be
// suppressed at the site with a justified comment:
//
//	//lint:ignore <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/rules"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	ruleList := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: galiot-lint [-json] [-rules r1,r2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	active := rules.All()
	if *list {
		for _, a := range active {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *ruleList != "" {
		names := strings.Split(*ruleList, ",")
		picked, ok := rules.ByName(names)
		if !ok {
			fmt.Fprintf(os.Stderr, "galiot-lint: unknown rule in -rules=%s (use -list)\n", *ruleList)
			return 2
		}
		active = picked
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "galiot-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "galiot-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "galiot-lint: %v\n", err)
		return 2
	}

	diags := analysis.Run(active, pkgs)
	for i := range diags {
		// Findings read better (and diff stably) module-relative.
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "galiot-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "galiot-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
