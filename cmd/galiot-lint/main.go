// galiot-lint is the repository's static-analysis driver: it loads and
// type-checks every package matched by its arguments (default ./...) using
// only the standard library's go/* packages, runs the rule suite from
// repro/internal/analysis/rules, and prints findings with file:line:col
// positions.
//
// Usage:
//
//	galiot-lint [-json] [-rules list] [-list] [-audit-ignores] [packages]
//
// Exit status: 0 when clean, 1 when there are findings, 2 on load or
// usage errors — so CI can gate on it directly. Individual findings can be
// suppressed at the site with a justified comment:
//
//	//lint:ignore <rule> <reason>
//
// -audit-ignores inverts the check: instead of findings it reports every
// //lint:ignore directive that no longer suppresses anything, so stale
// suppressions can be deleted before they hide a future regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/rules"
)

func main() {
	os.Exit(lintMain(os.Args[1:], os.Stdout, os.Stderr))
}

// printf writes formatted driver output, explicitly discarding the write
// error: a CLI has nowhere to report a failing stdout/stderr.
func printf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// lintMain is the whole driver behind a testable seam: flags and package
// patterns in args, findings on stdout, errors on stderr, exit code
// returned. Output ordering is deterministic — findings sort by
// (file, line, column, rule) — so runs diff cleanly in CI.
func lintMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("galiot-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	ruleList := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	audit := fs.Bool("audit-ignores", false, "report //lint:ignore directives that suppress nothing")
	fs.Usage = func() {
		printf(stderr, "usage: galiot-lint [-json] [-rules r1,r2] [-list] [-audit-ignores] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	active := rules.All()
	if *list {
		for _, a := range active {
			printf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *ruleList != "" {
		names := strings.Split(*ruleList, ",")
		picked, ok := rules.ByName(names)
		if !ok {
			printf(stderr, "galiot-lint: unknown rule in -rules=%s (use -list)\n", *ruleList)
			return 2
		}
		active = picked
	}

	root, err := findModuleRoot()
	if err != nil {
		printf(stderr, "galiot-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		printf(stderr, "galiot-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(fs.Args())
	if err != nil {
		printf(stderr, "galiot-lint: %v\n", err)
		return 2
	}

	diags, stale := analysis.RunAudit(active, pkgs)
	// Positions read better (and diff stably) module-relative.
	relativize := func(pos *token.Position) {
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	for i := range diags {
		relativize(&diags[i].Pos)
	}
	for i := range stale {
		relativize(&stale[i].Pos)
	}

	if *audit {
		return emitAudit(stale, *jsonOut, stdout, stderr)
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{} // encode as [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			printf(stderr, "galiot-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			printf(stdout, "%v\n", d)
		}
		if len(diags) > 0 {
			printf(stderr, "galiot-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// emitAudit prints the stale-directive report and gates on it: exit 1 when
// any //lint:ignore suppresses nothing, so the tree cannot accumulate dead
// suppressions that would mask a future finding at the same site.
func emitAudit(stale []analysis.Directive, jsonOut bool, stdout, stderr io.Writer) int {
	if jsonOut {
		if stale == nil {
			stale = []analysis.Directive{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stale); err != nil {
			printf(stderr, "galiot-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range stale {
			printf(stdout, "%s:%d:%d: stale //lint:ignore %s: suppresses no finding\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule)
		}
		if len(stale) > 0 {
			printf(stderr, "galiot-lint: %d stale suppression(s)\n", len(stale))
		}
	}
	if len(stale) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
