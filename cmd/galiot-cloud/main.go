// Command galiot-cloud runs the GalioT cloud decoder as a TCP service:
// gateways connect over the backhaul protocol, ship detected I/Q segments,
// and receive decoded frames back. Decoding uses Algorithm 1 of the paper
// (successive interference cancellation wrapped around the modulation-class
// kill filters) over the prototype technology set.
//
// Usage:
//
//	galiot-cloud -listen :7373
//
// With -shards N (N > 1) the process runs the sharded decode plane
// instead of a single service: N shared-nothing decode shards behind one
// accept loop, sessions routed by a consistent hash of (gateway, epoch),
// per-shard metrics under cloud_shard<i>_*. The -obs-addr endpoint then
// also serves /fleet/metrics: the rollup across the plane registry and
// every shard farm's private registry, with exact per-target breakdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/galiot"
)

func main() {
	var (
		listen         = flag.String("listen", ":7373", "TCP address to accept gateway sessions on")
		dsss           = flag.Bool("dsss", false, "also decode the O-QPSK DSSS technology")
		quiet          = flag.Bool("quiet", false, "suppress per-segment logs")
		workers        = flag.Int("workers", 4, "decode-farm worker count (0 decodes inline, one segment per session at a time; per shard when -shards > 1)")
		queue          = flag.Int("queue", 64, "decode-farm admission queue depth; beyond it v2 gateways get busy rejects (per shard when -shards > 1)")
		shards         = flag.Int("shards", 1, "decode-plane shard count; > 1 runs the sharded front tier (sessions routed by consistent hash of gateway and epoch)")
		sessionTimeout = flag.Duration("session-timeout", 0, "reap sessions idle for this long (0 = never)")
		dedupTTL       = flag.Duration("dedup-ttl", 0, "evict replay-dedup cache entries older than this (0 = count-bound only)")
		obsAddr        = flag.String("obs-addr", "", "serve /metrics, /trace/recent, /events/recent, /healthz, /readyz, /fleet/metrics and pprof on this address (empty = off)")
	)
	flag.Parse()

	techs := galiot.Technologies()
	if *dsss {
		techs = galiot.TechnologiesWithDSSS()
	}
	reg := galiot.NewObsRegistry()
	tracer := galiot.NewObsTracer(0)
	tracer.SetClock(func() int64 { return time.Now().UnixNano() })
	tracer.SetSite("cloud")
	journal := galiot.NewObsJournal(0)
	journal.SetClock(func() int64 { return time.Now().UnixNano() })
	health := galiot.NewObsHealth()
	// The trace store assembles this process's spans — stitched onto the
	// wire-propagated trace IDs v3 gateways send — behind /trace/tree and
	// /trace/slowest. Defaults keep every anomalous trace (replays, drops,
	// slow outliers) plus a 1-in-16 head sample.
	traces := galiot.NewObsTraceStore(galiot.ObsTraceStoreConfig{Obs: reg, Journal: journal})
	tracer.SetSink(traces.Ingest)

	if *shards > 1 {
		runSharded(*listen, *obsAddr, *shards, *workers, *queue, *sessionTimeout, *dedupTTL, *quiet, techs, reg, tracer, journal, health, traces)
		return
	}

	svc := galiot.NewCloud(techs...)
	if !*quiet {
		svc.Logf = log.Printf
	}
	svc.UseObs(reg, tracer)
	if *dedupTTL > 0 {
		svc.SetDedupTTL(*dedupTTL, time.Now)
	}
	if *workers > 0 {
		fm := svc.StartFarm(galiot.FarmConfig{
			Workers:    *workers,
			QueueDepth: *queue,
			Clock:      func() int64 { return time.Now().UnixNano() },
		})
		fm.RegisterHealth(health, "cloud_farm_headroom")
	}
	// Single-service mode still serves /fleet/metrics: a one-target rollup
	// over the service registry, so tooling (galiot-top) reads the same
	// shape regardless of shard count.
	fl := galiot.NewObsFleet(galiot.ObsRegistryTarget("cloud", reg))
	closeObs := startObs(*obsAddr, reg, tracer, journal, health, fl, traces)
	defer closeObs()

	srv := &galiot.CloudServer{Service: svc, SessionTimeout: *sessionTimeout, Journal: journal}
	if err := srv.Listen(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "galiot-cloud:", err)
		os.Exit(1)
	}
	log.Printf("galiot-cloud listening on %s (%d technologies)", srv.Addr(), len(techs))

	waitForInterrupt()
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	svc.Close() // drain the decode farm after the sessions are done
	frames, stats, fst := svc.Totals()
	log.Printf("decoded %d frames total (stats %+v)", frames, stats)
	if fst.Workers > 0 {
		log.Printf("farm: %d admitted, %d completed, %d rejected, %d deadline-exceeded, queue wait p50=%d p99=%d samples",
			fst.Admitted, fst.Completed, fst.Rejected, fst.DeadlineExceeded, fst.P50QueueWait, fst.P99QueueWait)
	}
	logMetrics(reg)
}

// runSharded serves the sharded decode plane: the front tier routes each
// session to one of the shards, every shard runs its own decode farm, and
// shutdown reports per-shard session and farm counters plus the fleet
// rollup across every shard registry.
func runSharded(listen, obsAddr string, shards, workers, queue int, sessionTimeout, dedupTTL time.Duration, quiet bool, techs []galiot.Technology, reg *galiot.ObsRegistry, tracer *galiot.ObsTracer, journal *galiot.ObsJournal, health *galiot.ObsHealth, traces *galiot.ObsTraceStore) {
	cfg := galiot.FleetConfig{
		Shards:     shards,
		Workers:    workers,
		QueueDepth: queue,
		Techs:      techs,
		Obs:        reg,
		Tracer:     tracer,
		Clock:      func() int64 { return time.Now().UnixNano() },
		Journal:    journal,
		Health:     health,
	}
	if !quiet {
		cfg.Logf = log.Printf
	}
	if dedupTTL > 0 {
		cfg.DedupTTL = dedupTTL
		cfg.DedupNow = time.Now
	}
	front, err := galiot.NewFleet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-cloud:", err)
		os.Exit(1)
	}
	// The fleet aggregator scrapes the plane registry plus every shard
	// farm's private registry, so -obs-addr exposes all per-shard series
	// through /fleet/metrics with exact per-target breakdown.
	fl := galiot.NewObsFleet(front.Targets()...)
	closeObs := startObs(obsAddr, reg, tracer, journal, health, fl, traces)
	defer closeObs()

	srv := front.NewServer()
	srv.SessionTimeout = sessionTimeout
	srv.Journal = journal
	if err := srv.Listen(listen); err != nil {
		fmt.Fprintln(os.Stderr, "galiot-cloud:", err)
		os.Exit(1)
	}
	log.Printf("galiot-cloud listening on %s (%d shards x %d workers, capacity hint %d, %d technologies)",
		srv.Addr(), front.Shards(), workers, front.Capacity(), len(techs))

	waitForInterrupt()
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	stats := front.Stats() // refreshes cloud_shard<i>_* gauges for the final snapshot
	rollup := fl.Collect() // freeze the fleet rollup while the shard registries are final
	front.Close()          // drain every shard farm after the sessions are done
	for _, st := range stats {
		log.Printf("shard %d: %d sessions routed, farm %d admitted, %d completed, %d rejected",
			st.Shard, st.Sessions, st.Farm.Admitted, st.Farm.Completed, st.Farm.Rejected)
	}
	logMetrics(reg)
	if data, err := json.Marshal(rollup); err == nil {
		log.Printf("fleet rollup: %s", data)
	}
}

// startObs starts the observability endpoint when addr is set and returns
// its closer (a no-op when off). The fleet aggregator must be wired before
// Start so /fleet/metrics never races a concurrent scrape.
func startObs(addr string, reg *galiot.ObsRegistry, tracer *galiot.ObsTracer, journal *galiot.ObsJournal, health *galiot.ObsHealth, fl *galiot.ObsFleet, traces *galiot.ObsTraceStore) func() {
	if addr == "" {
		return func() {}
	}
	obsSrv := &galiot.ObsServer{Registry: reg, Tracer: tracer, Journal: journal, Health: health, Fleet: fl, Traces: traces}
	if err := obsSrv.Start(addr); err != nil {
		fmt.Fprintln(os.Stderr, "galiot-cloud: obs server:", err)
		os.Exit(1)
	}
	log.Printf("observability endpoints on http://%s/metrics", obsSrv.Addr())
	return func() {
		if err := obsSrv.Close(); err != nil {
			log.Printf("obs server close: %v", err)
		}
	}
}

func waitForInterrupt() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func logMetrics(reg *galiot.ObsRegistry) {
	if data, err := json.Marshal(reg.Snapshot()); err == nil {
		log.Printf("metrics: %s", data)
	}
}
