// Command galiot-spectrum renders an ASCII waterfall of a cu8 capture
// file — the quick look a gateway operator takes before debugging
// detection issues. Each output row is the Welch power spectral density of
// one time slice, mapped across the capture bandwidth; intensity uses a
// dB ramp.
//
//	galiot-spectrum -in capture.cu8 -rows 40
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/dsp"
	"repro/internal/iq"
)

const ramp = " .:-=+*#%@"

func main() {
	var (
		in   = flag.String("in", "capture.cu8", "input cu8 file")
		rate = flag.Float64("rate", 1e6, "capture sample rate in Hz")
		rows = flag.Int("rows", 32, "time slices to render")
		cols = flag.Int("cols", 96, "frequency bins to render")
		span = flag.Float64("range", 40, "dynamic range in dB")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galiot-spectrum:", err)
		os.Exit(1)
	}
	defer f.Close()
	reader := iq.NewReader(f, iq.CU8)
	var samples []complex128
	buf := make([]complex128, 1<<18)
	for {
		n, err := reader.Read(buf)
		if n > 0 {
			samples = append(samples, buf[:n]...)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "galiot-spectrum:", err)
			os.Exit(1)
		}
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "galiot-spectrum: empty capture")
		os.Exit(1)
	}
	if *rows < 1 {
		*rows = 1
	}
	if *cols < 16 {
		*cols = 16
	}

	slice := len(samples) / *rows
	if slice < 256 {
		slice = len(samples)
		*rows = 1
	}
	fmt.Printf("%s: %d samples (%.2f s at %.0f Hz), %d x %d waterfall, %g dB range\n",
		*in, len(samples), float64(len(samples))/(*rate), *rate, *rows, *cols, *span)
	// frequency axis header
	left := -*rate / 2e3
	right := *rate / 2e3
	fmt.Printf("%8.0fkHz%s%+.0fkHz\n", left, strings.Repeat(" ", *cols-12), right)

	for r := 0; r < *rows; r++ {
		seg := samples[r*slice : (r+1)*slice]
		psd := dsp.WelchPSD(seg, min(2048, len(seg)), dsp.Hann)
		shifted := shiftPSD(psd)
		// peak within the whole row for reference
		peak := 1e-30
		for _, v := range shifted {
			if v > peak {
				peak = v
			}
		}
		var sb strings.Builder
		for c := 0; c < *cols; c++ {
			lo := c * len(shifted) / *cols
			hi := (c + 1) * len(shifted) / *cols
			bin := 0.0
			for i := lo; i < hi; i++ {
				if shifted[i] > bin {
					bin = shifted[i]
				}
			}
			db := 10 * math.Log10(bin/peak)
			idx := int((db + *span) / *span * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		fmt.Printf("%7.1fms |%s|\n", 1000*float64(r*slice)/(*rate), sb.String())
	}
}

// shiftPSD reorders a PSD so negative frequencies come first.
func shiftPSD(psd []float64) []float64 {
	n := len(psd)
	out := make([]float64, n)
	h := (n + 1) / 2
	copy(out, psd[h:])
	copy(out[n-h:], psd[:h])
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
